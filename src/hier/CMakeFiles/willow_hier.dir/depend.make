# Empty dependencies file for willow_hier.
# This may be replaced when dependencies are built.
