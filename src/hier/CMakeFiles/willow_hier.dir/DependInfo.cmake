
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hier/convergence.cc" "src/hier/CMakeFiles/willow_hier.dir/convergence.cc.o" "gcc" "src/hier/CMakeFiles/willow_hier.dir/convergence.cc.o.d"
  "/root/repo/src/hier/dump.cc" "src/hier/CMakeFiles/willow_hier.dir/dump.cc.o" "gcc" "src/hier/CMakeFiles/willow_hier.dir/dump.cc.o.d"
  "/root/repo/src/hier/tree.cc" "src/hier/CMakeFiles/willow_hier.dir/tree.cc.o" "gcc" "src/hier/CMakeFiles/willow_hier.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
