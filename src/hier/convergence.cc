#include "hier/convergence.h"

#include <algorithm>
#include <stdexcept>

namespace willow::hier {

ConvergenceReport analyze_convergence(const Tree& tree,
                                      Seconds per_level_latency,
                                      double safety_factor) {
  if (per_level_latency.value() < 0.0 || safety_factor < 1.0) {
    throw std::invalid_argument("analyze_convergence: bad parameters");
  }
  ConvergenceReport r;
  r.levels = tree.height();
  r.per_level_latency = per_level_latency;
  r.delta = per_level_latency * static_cast<double>(r.levels);
  r.recommended_period = r.delta * safety_factor;
  return r;
}

std::vector<Seconds> propagation_times(const Tree& tree, NodeId origin,
                                       Seconds per_level_latency) {
  const double a = per_level_latency.value();
  std::vector<double> t(tree.size(), -1.0);

  // Upward: origin -> root, one level per alpha.
  double clock = 0.0;
  for (NodeId cur = origin;; cur = tree.node(cur).parent()) {
    t[cur] = clock;
    if (tree.node(cur).is_root()) break;
    clock += a;
  }

  // Downward: every node that knows forwards to children one alpha later.
  // Process in top-down order repeatedly until stable (the tree is small and
  // creation order is already parent-first, so one pass after the up-path
  // suffices; we still fix-point for ragged shapes).
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id : tree.top_down()) {
      if (t[id] < 0.0) continue;
      for (NodeId c : tree.node(id).children()) {
        const double via = t[id] + a;
        if (t[c] < 0.0 || via < t[c]) {
          t[c] = via;
          changed = true;
        }
      }
    }
  }

  std::vector<Seconds> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = Seconds{t[i]};
  return out;
}

bool period_is_safe(const ConvergenceReport& report, Seconds demand_period) {
  return demand_period >= report.recommended_period;
}

}  // namespace willow::hier
