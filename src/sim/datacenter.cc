#include "sim/datacenter.h"

#include <string>

namespace willow::sim {

std::unique_ptr<Datacenter> build_datacenter(const DatacenterOptions& options) {
  auto dc = std::make_unique<Datacenter>(options.smoothing_alpha);
  auto& cluster = dc->cluster;
  dc->root = cluster.add_root("datacenter");
  std::size_t server_index = 0;
  for (std::size_t z = 0; z < options.layout.zones; ++z) {
    const auto zone = cluster.add_group(dc->root, "zone" + std::to_string(z),
                                        hier::NodeKind::kGeneric);
    dc->zones.push_back(zone);
    for (std::size_t r = 0; r < options.layout.racks_per_zone; ++r) {
      const auto rack = cluster.add_group(
          zone, "zone" + std::to_string(z) + "/rack" + std::to_string(r),
          hier::NodeKind::kRack);
      dc->racks.push_back(rack);
      for (std::size_t s = 0; s < options.layout.servers_per_rack; ++s) {
        core::ServerConfig cfg = options.server;
        if (server_index < options.ambient_overrides.size()) {
          cfg.thermal.ambient = options.ambient_overrides[server_index];
        }
        const auto node = cluster.add_server(
            rack, "server" + std::to_string(server_index + 1), cfg);
        dc->servers.push_back(node);
        ++server_index;
      }
    }
  }
  return dc;
}

namespace {
core::ServerConfig paper_server_config() {
  core::ServerConfig cfg;
  cfg.thermal.c1 = 0.08;
  cfg.thermal.c2 = 0.05;
  cfg.thermal.ambient = Celsius{25.0};
  cfg.thermal.limit = Celsius{70.0};
  cfg.thermal.nameplate = Watts{450.0};
  cfg.power_model = power::ServerPowerModel::paper_simulation();
  return cfg;
}
}  // namespace

std::unique_ptr<Datacenter> build_paper_datacenter() {
  DatacenterOptions options;
  options.server = paper_server_config();
  return build_datacenter(options);
}

std::unique_ptr<Datacenter> build_paper_datacenter_hot_zone(Celsius hot) {
  DatacenterOptions options;
  options.server = paper_server_config();
  options.ambient_overrides.assign(options.layout.total_servers(),
                                   Celsius{25.0});
  // Paper numbering: servers 15..18 (1-based) sit in the hot zone.
  for (std::size_t i = 14; i < options.layout.total_servers(); ++i) {
    options.ambient_overrides[i] = hot;
  }
  return build_datacenter(options);
}

}  // namespace willow::sim
