// Text scenario descriptions -> SimConfig.
//
// Scenarios are small "key = value" files so experiments can be versioned
// and rerun without recompiling (the willow_cli tool consumes them):
//
//     # a hot-zone sweep point
//     utilization = 0.6
//     zones = 2
//     racks_per_zone = 3
//     servers_per_rack = 3
//     hot_zone_servers = 4        # last N servers sit in the hot zone
//     hot_ambient_c = 40
//     margin_w = 1.5
//     supply = solar 220 350 48 0.4 11
//
// Unknown keys and malformed values fail loudly with the line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace willow::sim {

/// Highest scenario schema version this parser understands.  A scenario may
/// declare `schema_version = N` (ideally as its first line); files without
/// the key are treated as version 1 (the original unversioned dialect, which
/// version 2 reads unchanged — 2 only added the stamp itself).  Declaring a
/// newer version than this fails loudly rather than misreading the file.
inline constexpr long kScenarioSchemaVersion = 2;

/// Parse a scenario from a stream.  Throws std::runtime_error (with the line
/// number) on unknown keys, malformed values, out-of-range settings, or an
/// unsupported schema_version.
SimConfig parse_scenario(std::istream& in);

/// One entry of the scenario-key registry: a key the parser accepts, a valid
/// sample right-hand side, and a one-line description.  The samples are
/// mutually consistent — a file made of every `key = sample` line parses and
/// validates — which is what scenario_keys_roundtrip_test asserts, pinning
/// the registry to the parser.  The registry is the single source of truth
/// for willow_cli's key surface: `--keys` prints the key/sample table,
/// `--describe` renders key, sample and help, and `--set key=value`
/// overrides are validated against it.  scripts/check_docs_drift.sh diffs
/// the key set against docs/scenario_format.md and the parser, so a key
/// added to the parser without a registry + docs entry fails CI.
struct ScenarioKeyDoc {
  std::string key;
  std::string sample;
  std::string help;
};

/// True iff `key` is in the scenario_keys() registry (== the parser accepts
/// it; the roundtrip test and drift gate keep the two sets equal).
bool is_scenario_key(const std::string& key);

/// Every key parse_scenario() accepts, in a stable order, with a valid
/// sample value each.
const std::vector<ScenarioKeyDoc>& scenario_keys();

/// Parse a scenario file; throws std::runtime_error if unreadable.
SimConfig load_scenario_file(const std::string& path);

}  // namespace willow::sim
