#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "workload/qos.h"

namespace willow::sim {

using util::Seconds;
using util::Watts;

SimConfig::SimConfig() {
  // Simulation-scale controller defaults: margins and costs sized to the
  // ~28 W thermal envelope, utilization judged thermally (see
  // target_utilization's comment).
  controller.margin = util::Watts{1.5};
  controller.migration_cost = util::Watts{0.5};
  controller.utilization_reference =
      core::UtilizationReference::kThermalSustainable;
  // The simulation section leaves the consolidation threshold unspecified;
  // 0.5 reproduces Fig. 9's crossover ("At 50% utilization ... both demand
  // and consolidation driven migrations occur almost equally").
  controller.consolidation_threshold = 0.5;
  // One relative power unit of the simulation catalog (classes 1, 2, 5, 9)
  // is one watt at this scale.
  mix.unit_power = util::Watts{1.0};
}

std::vector<std::string> SimConfig::validate() const {
  std::vector<std::string> errors;
  if (datacenter.layout.total_servers() == 0) {
    errors.push_back(
        "datacenter.layout: zero servers (zones, racks_per_zone and "
        "servers_per_rack must all be >= 1)");
  }
  if (!(datacenter.smoothing_alpha > 0.0) ||
      datacenter.smoothing_alpha > 1.0) {
    errors.push_back("datacenter.smoothing_alpha: must be in (0,1]");
  }
  if (demand_quantum.value() < 0.0) {
    errors.push_back("demand_quantum: negative wattage");
  }
  if (mix.unit_power.value() < 0.0) {
    errors.push_back("mix.unit_power: negative wattage");
  }
  if (!(target_utilization > 0.0)) {
    errors.push_back("target_utilization: must be > 0");
  }
  if (rack_circuit_limit && rack_circuit_limit->value() < 0.0) {
    errors.push_back("rack_circuit_limit: negative wattage");
  }
  if (ups && !supply) {
    errors.push_back(
        "ups: a UPS buffers a supply profile; set `supply` too (with "
        "unconstrained supply the battery never does anything)");
  }
  if (ipc_chain_fraction < 0.0 || ipc_chain_fraction > 1.0) {
    errors.push_back("ipc_chain_fraction: must be in [0,1]");
  }
  if (report_loss_probability < 0.0 || report_loss_probability > 1.0) {
    errors.push_back("report_loss_probability: must be in [0,1]");
  }
  if (churn_probability < 0.0 || churn_probability > 1.0) {
    errors.push_back("churn_probability: must be in [0,1]");
  }
  if (sla_inflation < 0.0) {
    errors.push_back("sla_inflation: must be >= 0 (0 disables QoS tracking)");
  }
  if (warmup_ticks < 0) {
    errors.push_back("warmup_ticks: must be >= 0");
  }
  if (measure_ticks < 0) {
    errors.push_back("measure_ticks: must be >= 0");
  }
  for (std::size_t i = 0; i < ambient_events.size(); ++i) {
    const auto& ev = ambient_events[i];
    if (ev.first_server > ev.last_server) {
      errors.push_back("ambient_events[" + std::to_string(i) +
                       "]: first_server > last_server");
    }
    if (ev.tick < 0) {
      errors.push_back("ambient_events[" + std::to_string(i) +
                       "]: negative tick");
    }
  }
  for (const auto& e : faults.validate("faults.")) {
    errors.push_back(e);
  }
  // threads: any value is meaningful (0 = hardware concurrency, 1 = serial,
  // n = pool of n), so there is nothing to reject.
  return errors;
}

Simulation::Simulation(SimConfig config) : config_(std::move(config)) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string msg = "SimConfig::validate failed:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::invalid_argument(msg);
  }
  build();
}

double Simulation::sustainable_dynamic_w() const {
  const auto& thermal = config_.datacenter.server.thermal;
  const double sustainable =
      thermal.c2 * (thermal.limit.value() - thermal.ambient.value()) /
      thermal.c1;
  const double idle =
      config_.datacenter.server.power_model.static_power().value();
  return std::max(1e-9, sustainable - idle);
}

void Simulation::build() {
  for (auto& sink : config_.sinks) {
    if (sink) bus_.add_sink(sink);
  }
  dc_ = build_datacenter(config_.datacenter);
  auto& cluster = dc_->cluster;
  cluster.set_event_bus(&bus_);  // also attaches the PMU tree
  if (config_.ups) config_.ups->set_event_bus(&bus_);

  // Size the workload: mean aggregate app demand per server targets
  // target_utilization of the baseline thermally sustainable dynamic power.
  workload::MixConfig mix = config_.mix;
  mix.target_mean_per_server =
      Watts{sustainable_dynamic_w() * config_.target_utilization};
  rng_ = std::make_unique<util::Rng>(config_.seed);
  auto mixes = workload::build_datacenter_mix(mix, dc_->servers.size(), ids_,
                                              *rng_);
  std::vector<std::vector<workload::AppId>> chain_groups;
  for (std::size_t i = 0; i < dc_->servers.size(); ++i) {
    if (config_.ipc_chain_fraction > 0.0) {
      const auto chained = static_cast<std::size_t>(
          config_.ipc_chain_fraction * static_cast<double>(mixes[i].size()) +
          0.5);
      std::vector<workload::AppId> group;
      for (std::size_t a = 0; a < chained && a < mixes[i].size(); ++a) {
        group.push_back(mixes[i][a].id());
      }
      if (group.size() >= 2) chain_groups.push_back(std::move(group));
    }
    for (auto& app : mixes[i]) cluster.place(std::move(app), dc_->servers[i]);
  }
  flows_ = workload::chain_flows(chain_groups, config_.ipc_flow_units);

  if (config_.rack_circuit_limit) {
    for (hier::NodeId rack : dc_->racks) {
      cluster.set_group_circuit_limit(rack, *config_.rack_circuit_limit);
    }
  }

  fabric_ = std::make_unique<net::Fabric>(cluster.tree(), config_.fabric);
  config_.controller.incremental = config_.incremental_control;
  config_.controller.shadow_diff = config_.shadow_diff;
  controller_ = std::make_unique<core::Controller>(cluster, config_.controller);
  controller_->set_event_bus(&bus_);

  // Fault plane arming: models exist only when the scenario configures them,
  // so a zero-fault run installs no hooks (and registers no fault counters).
  if (config_.faults.link.any()) {
    link_faults_ = std::make_unique<fault::LinkFaultModel>(config_.faults.link,
                                                           config_.seed);
    controller_->set_link_faults(link_faults_.get());
  }
  if (config_.faults.server_faults_enabled()) {
    fault_plane_ = std::make_unique<fault::FaultPlane>(
        config_.faults, config_.seed, dc_->servers.size());
  }

  const std::size_t threads =
      config_.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : config_.threads;
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
  // The controller shards its independent subtree-scope consolidation dry
  // runs over the same pool; decisions are byte-identical for any pool size.
  controller_->set_thread_pool(pool_.get());
  controller_->set_migration_sink([this](const core::MigrationRecord& rec) {
    const auto* app = dc_->cluster.find_app(rec.app);
    const double payload =
        app ? app->image_size().value() / 1024.0 : 1.0;  // GiB units
    fabric_->add_migration(rec.from, rec.to, payload);
  });
}

SimResult Simulation::run() {
  if (ran_) throw std::logic_error("Simulation::run: already ran");
  ran_ = true;

  auto& cluster = dc_->cluster;
  auto& tree = cluster.tree();
  const auto& model = config_.datacenter.server.power_model;
  const double sustainable = sustainable_dynamic_w();
  // Served dynamic power as a fraction of the sustainable envelope — the
  // simulation's utilization scale for traffic and recording.
  auto norm_util = [&](const core::ManagedServer& srv, Watts budget) {
    if (srv.asleep()) return 0.0;
    const double dynamic =
        (srv.consumed_power(budget) - srv.idle_floor()).value();
    return std::clamp(dynamic / sustainable, 0.0, 2.0);
  };

  // Default supply: plenty (sum of nameplates).
  Watts plenty{0.0};
  for (hier::NodeId s : dc_->servers) {
    plenty += cluster.server(s).thermal().params().nameplate;
  }

  // Quantum 0 means deterministic demand (each app draws exactly its scaled
  // mean) — the steady-state regime the incremental control plane exploits;
  // PoissonDemand itself requires a positive quantum.
  std::optional<workload::PoissonDemand> demand;
  if (config_.demand_quantum.value() > 0.0) {
    demand.emplace(config_.demand_quantum);
  }
  const Seconds dt = config_.controller.demand_period;

  SimResult result;
  result.server_nodes = dc_->servers;
  result.servers.resize(dc_->servers.size());
  const auto l1_groups = fabric_->level1_groups();
  result.level1_switches.resize(l1_groups.size());
  for (std::size_t i = 0; i < l1_groups.size(); ++i) {
    result.level1_switches[i].group = l1_groups[i];
  }

  const long total_ticks = config_.warmup_ticks + config_.measure_ticks;
  std::uint64_t prev_dm = 0, prev_cm = 0;
  std::unordered_map<workload::AppId, long> last_move;
  const std::size_t n_servers = dc_->servers.size();

  // Sharded-phase scratch, reused across ticks.
  struct ChurnDecision {
    bool churn = false;          ///< this server churns this tick
    bool has_departure = false;  ///< a removable app was found
    workload::AppId departure = 0;
    std::size_t cls = 0;  ///< catalog class of the arriving app
    int priority = 0;
  };
  std::vector<ChurnDecision> churn_plan;
  std::vector<double> traffic_units(n_servers, -1.0);
  std::vector<double> temps(n_servers, 0.0);

  // Instruments are resolved once; updates inside the loop are pointer
  // writes.  Timers measure wall-clock and stay out of the event trace.
  auto& metrics = bus_.metrics();
  obs::Timer& t_sample = metrics.timer("sim.phase.sample");
  obs::Timer& t_churn = metrics.timer("sim.phase.churn");
  obs::Timer& t_demand = metrics.timer("sim.phase.demand");
  obs::Timer& t_controller = metrics.timer("sim.phase.controller");
  // Same phase, warm-up excluded: the steady-state controller cost the
  // scaling benchmark reports (warm-up ticks are dominated by first-pass
  // cache seeding and thermal settling, which would mask the steady state).
  obs::Timer& t_controller_measured =
      metrics.timer("sim.phase.controller.measured");
  obs::Timer& t_thermal = metrics.timer("sim.phase.thermal");
  obs::Timer& t_record = metrics.timer("sim.phase.record");
  // Whole-tick wall time on post-warmup ticks only — every phase including
  // recording.  This is what the data-plane scaling bench reports as
  // ticks-per-second (the controller-only timer above under-counts the
  // record/thermal cost that dominates at large fleets).
  obs::Timer& t_tick_measured = metrics.timer("sim.phase.tick.measured");
  obs::Histogram& h_migrations =
      metrics.histogram("sim.migrations_per_tick", {0, 1, 2, 4, 8, 16, 32});
  obs::Counter& c_ticks = metrics.counter("sim.ticks");

  // Fault instruments are created only on armed runs (timer()/counter()
  // register on first use), so a zero-fault metrics snapshot is unchanged.
  obs::Timer* t_fault =
      fault_plane_ ? &metrics.timer("sim.phase.fault") : nullptr;
  obs::Counter* c_crashes =
      fault_plane_ ? &metrics.counter("fault.crashes") : nullptr;
  obs::Counter* c_restarts =
      fault_plane_ ? &metrics.counter("fault.restarts") : nullptr;
  obs::Counter* c_sensor_faults =
      fault_plane_ ? &metrics.counter("fault.sensor_faults") : nullptr;
  obs::Counter* c_sensor_recoveries =
      fault_plane_ ? &metrics.counter("fault.sensor_recoveries") : nullptr;

  fault::FaultPlane::Callbacks fault_cb;
  if (fault_plane_) {
    fault_cb.skip_crash = [&](std::size_t i) {
      // A consolidated (asleep) server has no running plant to crash.
      return cluster.server_at(i).asleep();
    };
    fault_cb.crash = [&, this](std::size_t i, long down_ticks) {
      const hier::NodeId s = dc_->servers[i];
      cluster.crash_server(s);
      controller_->note_availability_change(s);
      if (bus_.enabled()) {
        obs::Event e;
        e.type = obs::EventType::kNodeDown;
        e.node = s;
        e.value = static_cast<double>(down_ticks);
        bus_.emit(std::move(e));
      }
      c_crashes->increment();
    };
    fault_cb.restart = [&, this](std::size_t i) {
      const hier::NodeId s = dc_->servers[i];
      cluster.restore_server(s);
      // Recovery re-sync: the availability flip re-dirties the node's report
      // path, the parent's roll-up and the division, exactly like a wake.
      controller_->note_availability_change(s);
      if (bus_.enabled()) {
        obs::Event up;
        up.type = obs::EventType::kNodeUp;
        up.node = s;
        bus_.emit(std::move(up));
        obs::Event rs;
        rs.type = obs::EventType::kResyncComplete;
        rs.node = s;
        bus_.emit(std::move(rs));
      }
      c_restarts->increment();
    };
    fault_cb.sensor = [&, this](std::size_t i, const fault::SensorOverride& o,
                                bool temp_sensor) {
      auto& srv = cluster.server_at(i);
      fault::SensorOverride applied = o;
      // Stuck-at onset: freeze at the value the sensor read at that moment.
      if (applied.mode == fault::SensorMode::kStuck && applied.param == 0.0) {
        applied.param = temp_sensor ? srv.thermal().temperature().value()
                                    : srv.power_demand().value();
      }
      if (temp_sensor) {
        srv.set_temp_sensor(applied);
      } else {
        srv.set_power_sensor(applied);
      }
      controller_->note_external_change(dc_->servers[i]);
      if (bus_.enabled()) {
        obs::Event e;
        e.type = obs::EventType::kSensorFault;
        e.node = dc_->servers[i];
        e.value = applied.param;
        // aux encodes which sensor and what happened: mode code (0 recovery,
        // 1 stuck, 2 bias, 3 dropout) plus 10 for the temperature sensor.
        e.aux = static_cast<double>(static_cast<int>(applied.mode)) +
                (temp_sensor ? 10.0 : 0.0);
        bus_.emit(std::move(e));
      }
      if (applied.healthy()) {
        c_sensor_recoveries->increment();
      } else {
        c_sensor_faults->increment();
      }
    };
  }

  for (long tick = 0; tick < total_ticks; ++tick) {
    const obs::ScopedTimer tick_timer(
        tick >= config_.warmup_ticks ? &t_tick_measured : nullptr);
    const double t = static_cast<double>(tick) * dt.value();
    bus_.set_tick(tick);
    c_ticks.increment();
    if (link_faults_) link_faults_->set_tick(tick);

    // Fused sample fan-out: churn and fault-plane draws share one batch.
    // Both sides are read-only against shared state and pull from
    // independent counter-based streams ((seed, tick, i, kChurn) vs
    // kSensor/kCrash), and neither serial apply phase below writes anything
    // the other side's sampling reads (churn apply moves apps, never the
    // asleep/crashed flags the fault draws consult), so fusing them is
    // bitwise-neutral — it just halves the per-tick fan-out count.
    const bool churn_active = config_.churn_probability > 0.0;
    const bool fault_sampling =
        fault_plane_ != nullptr && fault_plane_->needs_sampling();
    if (churn_active || fault_sampling) {
      const obs::ScopedTimer sample_timer(&t_sample);
      const auto& catalog = workload::simulation_catalog();
      if (churn_active) churn_plan.assign(n_servers, {});
      if (fault_sampling) fault_plane_->begin_tick();
      util::parallel_for_ranges(
          pool_.get(), n_servers, [&](std::size_t begin, std::size_t end) {
            if (churn_active) {
              for (std::size_t i = begin; i < end; ++i) {
                const auto& srv = cluster.server_at(i);
                // A crashed server is unreachable: nothing departs, nothing
                // arrives, until it restarts.
                if (srv.asleep() || srv.crashed() || srv.apps().empty()) {
                  continue;
                }
                auto rng = util::tick_stream(config_.seed, tick, i,
                                             util::stream_phase::kChurn);
                if (!rng.chance(config_.churn_probability)) continue;
                auto& d = churn_plan[i];
                d.churn = true;
                // Departure: a random app that is not mid-transfer.
                std::vector<workload::AppId> removable;
                for (const auto& a : srv.apps()) {
                  if (!controller_->app_in_flight(a.id())) {
                    removable.push_back(a.id());
                  }
                }
                if (!removable.empty()) {
                  d.has_departure = true;
                  d.departure = removable[rng.index(removable.size())];
                }
                // Arrival: a fresh application of a random class, same
                // server.
                d.cls = rng.index(catalog.size());
                if (config_.mix.priority_levels > 1) {
                  d.priority =
                      rng.uniform_int(0, config_.mix.priority_levels - 1);
                }
              }
            }
            if (fault_sampling) {
              fault_plane_->sample_range(tick, begin, end, fault_cb);
            }
          });
    }
    if (churn_active) {
      const obs::ScopedTimer churn_timer(&t_churn);
      const auto& catalog = workload::simulation_catalog();
      // Apply phase (serial, fixed server order): placement mutations and
      // app-id allocation happen in index order regardless of thread count.
      for (std::size_t i = 0; i < n_servers; ++i) {
        const auto& d = churn_plan[i];
        if (!d.churn) continue;
        if (d.has_departure) {
          cluster.remove_app(d.departure);
          // The app is gone for good: drop its re-migration bookkeeping so
          // the map does not grow without bound under churn.
          last_move.erase(d.departure);
          ++result.churn_departures;
        }
        const Watts mean = config_.mix.unit_power * catalog[d.cls].relative_power;
        workload::Application fresh(
            ids_.next(), d.cls, mean,
            util::Megabytes{config_.mix.image_per_unit.value() *
                            catalog[d.cls].relative_power});
        if (config_.mix.priority_levels > 1) {
          fresh.set_priority(d.priority);
        }
        cluster.place(std::move(fresh), dc_->servers[i]);
        ++result.churn_arrivals;
        // Churn mutated the hosted set behind the controller's back.
        controller_->note_external_change(dc_->servers[i]);
      }
    }

    for (const auto& ev : config_.ambient_events) {
      if (ev.tick != tick) continue;
      for (std::size_t i = ev.first_server;
           i <= ev.last_server && i < dc_->servers.size(); ++i) {
        cluster.server(dc_->servers[i]).thermal().set_ambient(ev.ambient);
        // The ambient shift re-zones the server (sustainable envelope moved)
        // without any demand report firing.
        controller_->note_external_change(dc_->servers[i]);
      }
    }

    if (fault_plane_) {
      const obs::ScopedTimer fault_timer(t_fault);
      // Sampling (if any) rode the fused fan-out above; this is the serial
      // apply phase in fixed server order.
      fault_plane_->apply(tick, fault_cb);
    }

    const double intensity =
        config_.intensity ? config_.intensity->at(Seconds{t}) : 1.0;
    {
      const obs::ScopedTimer demand_timer(&t_demand);
      // One fan-out refreshes demand and piggybacks the other two
      // per-server jobs of this phase: the report-fault draw (independent
      // kFault stream) and the pre-controller traffic figure.  The latter
      // reads only server i plus its standing budget from last period —
      // nothing between here and the serial deposit below (supply, UPS,
      // fabric period reset) writes either — so it is the same value the
      // old dedicated fan-out computed.
      const bool loss = config_.report_loss_probability > 0.0;
      const core::Cluster::PerServerHook per_server = [&](std::size_t i) {
        if (loss) {
          auto rng = util::tick_stream(config_.seed, tick, i,
                                       util::stream_phase::kFault);
          cluster.server_at(i).set_report_fault(
              rng.chance(config_.report_loss_probability));
        }
        const auto& srv = cluster.server_at(i);
        traffic_units[i] =
            srv.asleep() || srv.crashed()
                ? -1.0
                : norm_util(srv, tree.node(srv.node()).budget());
      };
      if (demand) {
        cluster.refresh_demands(*demand, config_.seed, tick, intensity,
                                pool_.get(), &per_server);
      } else {
        cluster.refresh_demands_deterministic(intensity, pool_.get(),
                                              &per_server);
      }
    }

    Watts supply = config_.supply ? config_.supply->at(Seconds{t}) : plenty;
    if (config_.ups && !config_.faults.ups_failures.empty()) {
      bool failed = false;
      for (const auto& w : config_.faults.ups_failures) {
        if (tick >= w.first_tick && tick <= w.last_tick) {
          failed = true;
          break;
        }
      }
      config_.ups->set_failed(failed);
    }
    if (config_.ups) {
      // The root PMU's demand from the previous reports is the best estimate
      // of what the load wants from the feed this period.
      const Watts want = tree.node(tree.root()).smoothed_demand();
      supply = config_.ups->step(supply, util::max(want, supply), dt);
    }

    fabric_->begin_period();
    // Per-server traffic was computed sharded (in the demand fan-out) and is
    // deposited serially in server order: fabric counters are floating-point
    // sums whose value must not depend on accumulation order.
    for (std::size_t i = 0; i < n_servers; ++i) {
      if (traffic_units[i] >= 0.0) {
        fabric_->add_server_traffic(dc_->servers[i], traffic_units[i]);
      }
    }

    {
      const auto start = std::chrono::steady_clock::now();
      controller_->tick(supply);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      t_controller.add(elapsed.count());
      if (tick >= config_.warmup_ticks) {
        t_controller_measured.add(elapsed.count());
      }
    }

    // IPC flows between now-separated endpoints cross the fabric.
    double remote_units = 0.0;
    double flow_hops = 0.0;
    for (const auto& flow : flows_.flows()) {
      const auto ha = cluster.host_of(flow.a);
      const auto hb = cluster.host_of(flow.b);
      if (ha == hier::kNoNode || hb == hier::kNoNode) continue;
      const auto hops = fabric_->add_flow_traffic(ha, hb, flow.traffic_units);
      flow_hops += static_cast<double>(hops);
      if (hops > 0) remote_units += flow.traffic_units;
    }

    const bool recording = tick >= config_.warmup_ticks;
    {
      const obs::ScopedTimer thermal_timer(&t_thermal);
      if (recording) {
        // Per-server metric accumulation rides the thermal batch on recorded
        // ticks: it reads only the server just stepped (slot i of
        // result.servers / temps) plus its standing budget, so fusing it
        // here yields the values the old dedicated record fan-out produced.
        // The max/violation reduction still runs serially below.
        const core::Cluster::PerServerHook record_server =
            [&](std::size_t i) {
              const hier::NodeId s = dc_->servers[i];
              const auto& srv = cluster.server_at(i);
              auto& m = result.servers[i];
              const Watts budget = tree.node(s).budget();
              m.consumed_power.add(srv.consumed_power(budget).value());
              m.temperature.add(srv.thermal().temperature().value());
              m.utilization.add(norm_util(srv, budget));
              if (srv.asleep()) {
                m.asleep_fraction += 1.0;
                // What the server would have drawn at the scenario's offered
                // load.
                m.saved_power_w += model.static_power().value() +
                                   sustainable * config_.target_utilization;
              }
              temps[i] = srv.thermal().temperature().value();
            };
        cluster.step_thermal(dt, pool_.get(), &record_server);
      } else {
        cluster.step_thermal(dt, pool_.get());
      }
    }

    for (const auto& rec : controller_->migrations_this_tick()) {
      auto it = last_move.find(rec.app);
      if (it != last_move.end() && controller_->tick_count() - it->second < 3) {
        ++result.quick_remigrations;
      }
      last_move[rec.app] = controller_->tick_count();
    }

    if (!recording) continue;

    // --- Recording (serial remainder; the per-server accumulation rode the
    // thermal batch above) ---
    const obs::ScopedTimer record_timer(&t_record);
    const auto& st = controller_->stats();
    const auto dm = st.demand_migrations - prev_dm;
    const auto cm = st.consolidation_migrations - prev_cm;
    prev_dm = st.demand_migrations;
    prev_cm = st.consolidation_migrations;
    result.migrations_per_tick.record(t, static_cast<double>(dm + cm));
    h_migrations.observe(static_cast<double>(dm + cm));
    result.demand_migrations_per_tick.record(t, static_cast<double>(dm));
    result.consolidation_migrations_per_tick.record(t, static_cast<double>(cm));
    result.normalized_migration_traffic.record(
        t, fabric_->normalized_migration_traffic());
    result.remote_flow_traffic.record(t, remote_units);
    result.mean_flow_hops.record(
        t, flows_.empty()
               ? 0.0
               : flow_hops / static_cast<double>(flows_.size()));

    const int server_level = 0;
    result.imbalance.record(
        t, core::level_balance(tree, server_level).imbalance.value());
    if (config_.sla_inflation > 1.0) {
      workload::SlaTracker tracker(config_.sla_inflation);
      for (hier::NodeId s : dc_->servers) {
        const auto& srv = cluster.server(s);
        double offered = 0.0, denied = 0.0;
        for (const auto& a : srv.apps()) {
          // A crashed host denies all of its hosted service until restart.
          if (a.dropped() || srv.asleep() || srv.crashed()) {
            denied += a.effective_mean_power().value() * intensity;
          } else {
            offered += a.demand().value();
          }
        }
        if (denied > 0.0) tracker.record_denied(denied);
        if (offered <= 0.0) continue;
        // Serviceable capacity: what the server may and can sustainably
        // serve beyond its idle floor.
        const Watts budget = tree.node(s).budget();
        const double capacity =
            std::max(0.0, (util::min(budget,
                                     srv.thermal().steady_state_power_limit()) -
                           srv.idle_floor())
                              .value());
        const double rho = capacity > 0.0 ? offered / capacity : 2.0;
        tracker.record(offered, rho);
      }
      result.qos_satisfaction.record(t, tracker.satisfaction());
      result.qos_mean_inflation.record(t, tracker.mean_inflation());
    }

    const Watts it_power = cluster.total_consumed();
    result.total_power.record(t, it_power.value());
    result.supply_series.record(t, supply.value());
    result.intensity_series.record(t, intensity);
    if (config_.cooling) {
      const auto outside = config_.datacenter.server.thermal.ambient;
      result.facility_power.record(
          t, config_.cooling->facility_power(it_power, outside).value());
      result.pue.record(t, config_.cooling->pue(it_power, outside));
    }

    for (std::size_t i = 0; i < n_servers; ++i) {
      result.max_temperature_c = std::max(result.max_temperature_c, temps[i]);
      if (temps[i] >
          cluster.server_at(i).thermal().params().limit.value() + 0.5) {
        result.thermal_violation = true;
      }
    }
    for (std::size_t i = 0; i < l1_groups.size(); ++i) {
      auto& m = result.level1_switches[i];
      m.power.add(fabric_->switch_power(l1_groups[i]).value());
      const auto& gs = fabric_->stats(l1_groups[i]);
      m.traffic.add(gs.period_traffic);
      m.migration_cost.add(gs.period_migration_cost.value());
    }
    ++result.ticks;
  }

  if (result.ticks > 0) {
    for (auto& m : result.servers) {
      m.asleep_fraction /= static_cast<double>(result.ticks);
      m.saved_power_w /= static_cast<double>(result.ticks);
    }
  }
  result.controller_stats = controller_->stats();
  // Mirror the controller's whole-run tallies as named counters, so external
  // consumers (perf_smoke's trace-vs-metrics diff, willow_cli --metrics) see
  // one uniform surface.
  {
    const auto& cs = result.controller_stats;
    metrics.counter("controller.demand_migrations")
        .increment(cs.demand_migrations);
    metrics.counter("controller.consolidation_migrations")
        .increment(cs.consolidation_migrations);
    metrics.counter("controller.local_migrations")
        .increment(cs.local_migrations);
    metrics.counter("controller.nonlocal_migrations")
        .increment(cs.nonlocal_migrations);
    metrics.counter("controller.wakes").increment(cs.wakes);
    metrics.counter("controller.sleeps").increment(cs.sleeps);
    metrics.counter("controller.drops").increment(cs.drops);
    metrics.counter("controller.degrades").increment(cs.degrades);
    metrics.counter("controller.revivals").increment(cs.revivals);
    metrics.counter("controller.restores").increment(cs.restores);
    metrics.gauge("controller.degraded_demand_w")
        .set(cs.degraded_demand.value());
    metrics.gauge("controller.dropped_demand_w")
        .set(cs.dropped_demand.value());
  }
  bus_.flush();
  result.metrics = metrics.snapshot();
  return result;
}

SimResult run_simulation(SimConfig config) {
  Simulation sim(std::move(config));
  return sim.run();
}

}  // namespace willow::sim
