#include "sim/result_io.h"

#include <ostream>

#include "util/json.h"

namespace willow::sim {

namespace {

void write_series(util::JsonWriter& w, const char* name,
                  const util::TimeSeries& series) {
  if (series.empty()) return;
  w.key(name).begin_object();
  w.number_array("t", series.times());
  w.number_array("v", series.values());
  w.end_object();
}

}  // namespace

void write_result_json(std::ostream& os, const SimResult& result) {
  util::JsonWriter w(os);
  w.begin_object();
  w.key("schema_version").value(kResultSchemaVersion);
  w.key("ticks").value(static_cast<long long>(result.ticks));
  w.key("max_temperature_c").value(result.max_temperature_c);
  w.key("thermal_violation").value(result.thermal_violation);
  w.key("quick_remigrations")
      .value(static_cast<long long>(result.quick_remigrations));

  const auto& st = result.controller_stats;
  w.key("controller").begin_object();
  w.key("demand_migrations").value(st.demand_migrations);
  w.key("consolidation_migrations").value(st.consolidation_migrations);
  w.key("local_migrations").value(st.local_migrations);
  w.key("nonlocal_migrations").value(st.nonlocal_migrations);
  w.key("drops").value(st.drops);
  w.key("revivals").value(st.revivals);
  w.key("degrades").value(st.degrades);
  w.key("restores").value(st.restores);
  w.key("sleeps").value(st.sleeps);
  w.key("wakes").value(st.wakes);
  w.key("dropped_demand_w").value(st.dropped_demand.value());
  w.key("degraded_demand_w").value(st.degraded_demand.value());
  w.end_object();

  w.key("servers").begin_array();
  for (std::size_t i = 0; i < result.servers.size(); ++i) {
    const auto& s = result.servers[i];
    w.begin_object();
    if (i < result.server_nodes.size()) {
      w.key("node").value(static_cast<long long>(result.server_nodes[i]));
    }
    w.key("mean_power_w").value(s.consumed_power.mean());
    w.key("mean_temperature_c").value(s.temperature.mean());
    w.key("max_temperature_c").value(s.temperature.max());
    w.key("mean_utilization").value(s.utilization.mean());
    w.key("asleep_fraction").value(s.asleep_fraction);
    w.key("saved_power_w").value(s.saved_power_w);
    w.end_object();
  }
  w.end_array();

  w.key("level1_switches").begin_array();
  for (const auto& s : result.level1_switches) {
    w.begin_object();
    w.key("group").value(static_cast<long long>(s.group));
    w.key("mean_power_w").value(s.power.mean());
    w.key("mean_traffic").value(s.traffic.mean());
    w.key("mean_migration_cost_w").value(s.migration_cost.mean());
    w.end_object();
  }
  w.end_array();

  if (!result.metrics.empty()) {
    const auto& m = result.metrics;
    w.key("metrics").begin_object();
    w.key("counters").begin_object();
    for (const auto& c : m.counters) w.key(c.name).value(c.value);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& g : m.gauges) w.key(g.name).value(g.value);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& h : m.histograms) {
      w.key(h.name).begin_object();
      w.number_array("upper_bounds", h.upper_bounds);
      w.key("cumulative_counts").begin_array();
      for (const auto c : h.cumulative_counts) w.value(c);
      w.end_array();
      w.key("count").value(h.count);
      w.key("sum").value(h.sum);
      w.end_object();
    }
    w.end_object();
    w.key("timers").begin_object();
    for (const auto& t : m.timers) {
      w.key(t.name).begin_object();
      w.key("count").value(t.count);
      w.key("total_seconds").value(t.total_seconds);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }

  w.key("series").begin_object();
  write_series(w, "supply_w", result.supply_series);
  write_series(w, "total_power_w", result.total_power);
  write_series(w, "migrations", result.migrations_per_tick);
  write_series(w, "demand_migrations", result.demand_migrations_per_tick);
  write_series(w, "consolidation_migrations",
               result.consolidation_migrations_per_tick);
  write_series(w, "normalized_migration_traffic",
               result.normalized_migration_traffic);
  write_series(w, "remote_flow_traffic", result.remote_flow_traffic);
  write_series(w, "mean_flow_hops", result.mean_flow_hops);
  write_series(w, "imbalance_w", result.imbalance);
  write_series(w, "intensity", result.intensity_series);
  write_series(w, "facility_power_w", result.facility_power);
  write_series(w, "pue", result.pue);
  write_series(w, "qos_satisfaction", result.qos_satisfaction);
  write_series(w, "qos_mean_inflation", result.qos_mean_inflation);
  w.end_object();

  w.end_object();
  w.finish();
  os << '\n';
}

}  // namespace willow::sim
