// SimResult -> JSON, for downstream analysis without C++.
#pragma once

#include <iosfwd>

#include "sim/simulation.h"

namespace willow::sim {

/// Version stamped into every result document as "schema_version".  History:
///   1  (implicit) unversioned original shape
///   2  added the stamp itself plus the "metrics" block (counters, gauges,
///      histograms, wall-clock phase timers)
inline constexpr int kResultSchemaVersion = 2;

/// Serialize the full result: controller stats, per-server summaries, the
/// metrics snapshot, and every recorded time series (as {t: [...], v: [...]}
/// pairs).  Empty series (disabled features) are omitted.
void write_result_json(std::ostream& os, const SimResult& result);

}  // namespace willow::sim
