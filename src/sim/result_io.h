// SimResult -> JSON, for downstream analysis without C++.
#pragma once

#include <iosfwd>

#include "sim/simulation.h"

namespace willow::sim {

/// Version stamped into every result document as "schema_version".  History:
///   1  (implicit) unversioned original shape
///   2  added the stamp itself plus the "metrics" block (counters, gauges,
///      histograms, wall-clock phase timers)
///   3  each "servers" entry carries its PMU leaf id as "node" — the stable
///      key for joining against traces/events; array position remains
///      creation order but is no longer the documented lookup key
inline constexpr int kResultSchemaVersion = 3;

/// Serialize the full result: controller stats, per-server summaries, the
/// metrics snapshot, and every recorded time series (as {t: [...], v: [...]}
/// pairs).  Empty series (disabled features) are omitted.
void write_result_json(std::ostream& os, const SimResult& result);

}  // namespace willow::sim
