// SimResult -> JSON, for downstream analysis without C++.
#pragma once

#include <iosfwd>

#include "sim/simulation.h"

namespace willow::sim {

/// Serialize the full result: controller stats, per-server summaries, and
/// every recorded time series (as {t: [...], v: [...]} pairs).  Empty series
/// (disabled features) are omitted.
void write_result_json(std::ostream& os, const SimResult& result);

}  // namespace willow::sim
