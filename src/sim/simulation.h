// The discrete-time simulation engine behind every Sec. V-B figure.
//
// One Simulation owns the plant (Datacenter), its workload, the switch
// fabric, the supply profile (optionally buffered by a UPS), and the Willow
// controller, and advances them in demand-period ticks:
//
//   1. Poisson demand refresh (workload)
//   2. fabric period reset + base query traffic deposition
//   3. controller.tick(available supply)   — migrations flow to the fabric
//   4. thermal stepping under consumed power
//   5. metric recording (after an optional warm-up)
//
// The per-server parts of those phases are sharded across a thread pool
// (SimConfig::threads) as at most three *fused* batches per tick — churn +
// fault sampling; demand refresh + report-fault flags + traffic accounting;
// thermal stepping + metric recording — with bit-deterministic results for
// any thread count: per-tick randomness comes from counter-based per-server
// streams (util::tick_stream) and shared accumulators are deposited in fixed
// server order between the batches.  The controller itself stays serial — a
// control period is a causal chain (demand -> reports -> budgets ->
// migrations).
//
// The recorded SimResult carries everything Figures 5–12 plot.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fault/link_faults.h"
#include "fault/plane.h"
#include "net/fabric.h"
#include "obs/bus.h"
#include "obs/metrics.h"
#include "power/cooling.h"
#include "power/supply.h"
#include "power/ups.h"
#include "sim/datacenter.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "workload/demand.h"
#include "workload/flows.h"
#include "workload/intensity.h"
#include "workload/mix.h"

namespace willow::sim {

struct SimConfig {
  SimConfig();

  /// Plant shape; the paper's Fig. 3 by default.
  DatacenterOptions datacenter{};
  /// Target mean utilization per server, interpreted against the *thermally
  /// sustainable* dynamic power of the baseline (cool-ambient) server.
  ///
  /// With the paper's constants the sustainable steady-state draw is
  /// c2/c1 * (T_limit - Ta) ~ 28 W per 450 W-rated server, so utilization in
  /// the simulation figures is a fraction of that envelope — consistent with
  /// Fig. 5's "power consumed increases ... but only upto the limit provided
  /// by the thermal constraint".  The 450 W nameplate acts as the transient
  /// (cold-start) cap of Fig. 4.
  double target_utilization = 0.5;
  /// Workload shape knobs (catalog/unit power); target_mean_per_server is
  /// derived from target_utilization and overwritten.
  workload::MixConfig mix{};
  /// Poisson demand quantum (W per in-flight query).  1 W against per-app
  /// means of 1–9 W gives the visible per-period variance the paper's
  /// Poisson-demand assumption implies; smaller quanta make demand nearly
  /// deterministic.
  util::Watts demand_quantum{1.0};
  /// Supply profile; nullptr means "plenty": sum of server nameplates.
  std::shared_ptr<const power::SupplyProfile> supply{};
  /// Optional UPS between the raw supply and the root PMU.
  std::optional<power::Ups> ups{};
  /// Demand-intensity profile; nullptr means constant 1.0 (stationary load).
  std::shared_ptr<const workload::IntensityProfile> intensity{};
  /// Optional cooling plant: when set, facility power and PUE are recorded
  /// (heat rejection at the baseline ambient temperature).
  std::optional<power::CoolingModel> cooling{};
  /// Controller parameters (ΔD/η1/η2/margins/packing...).
  core::ControllerConfig controller{};
  /// Incremental (change-driven) control plane: dirty-set demand
  /// aggregation, memoized budget divisions, epoch-stamped consolidation
  /// candidates and packing reuse.  Semantically identical to the full
  /// recompute — same budgets, migrations and event trace; the scenario
  /// knob exists so benchmarks and A/B runs can flip the walk policy
  /// without touching the nested controller config (copied onto
  /// controller.incremental at build time).
  bool incremental_control = true;
  /// Debug shadow mode: every skip the incremental path takes is re-derived
  /// from scratch and any bitwise divergence throws (copied onto
  /// controller.shadow_diff at build time).  Expensive; CI-only.
  bool shadow_diff = false;
  /// Optional under-designed rack feed rating applied to every rack (the
  /// Sec.-I lean-design scenario); nullopt means racks never bind.
  std::optional<util::Watts> rack_circuit_limit{};
  /// Switch fabric parameters (Fig. 8 mirror of the PMU tree).
  net::FabricConfig fabric{};
  /// Fraction of each server's applications wired into an IPC chain
  /// (tiers of one service, initially co-located).  0 keeps the paper's
  /// transactional assumption of no inter-server traffic; > 0 exercises the
  /// future-work scenario where migrations can separate chatty tiers.
  double ipc_chain_fraction = 0.0;
  /// Traffic units per IPC flow (1.0 == one fully utilized server's query
  /// traffic).
  double ipc_flow_units = 0.25;
  /// Scheduled ambient-temperature changes (heat waves, cooling failures and
  /// repairs): at `tick`, servers with index in [first_server, last_server]
  /// (0-based, inclusive) get the new ambient.  The other half of the
  /// paper's title — *thermal* adaptation — under a changing environment.
  struct AmbientEvent {
    long tick = 0;
    std::size_t first_server = 0;
    std::size_t last_server = 0;
    util::Celsius ambient{25.0};
  };
  std::vector<AmbientEvent> ambient_events{};

  /// SLA response-time inflation bound for the QoS tracker; 0 disables QoS
  /// recording (see workload/qos.h).  A typical interactive SLA: 5.0 (the
  /// server may run up to 80% of its serviceable capacity).
  double sla_inflation = 0.0;
  /// Per-server, per-tick probability of a lost demand report (fault
  /// injection; the PMU acts on stale state until the next report).
  double report_loss_probability = 0.0;
  /// Deterministic fault-injection plane (docs/fault_model.md): PMU link
  /// message loss/delay/duplication, sensor stuck-at/bias/dropout episodes,
  /// probabilistic and scripted server crashes, UPS failure windows.  All
  /// schedules are pure functions of `seed` via util::tick_stream, so traces
  /// stay byte-identical for any `threads`; the default (all zeros) installs
  /// no hooks and reproduces a fault-free run byte for byte.
  fault::FaultConfig faults{};
  /// Workload churn: per-server, per-tick probability that one hosted
  /// application departs and a fresh one (random class) arrives on the same
  /// server — the paper's "variations in workload ... characteristics".
  double churn_probability = 0.0;
  /// RNG seed for workload build + demand draws.
  unsigned long long seed = 42;
  /// Ticks ignored before recording starts.
  long warmup_ticks = 20;
  /// Ticks recorded.
  long measure_ticks = 200;
  /// Tick-engine worker threads for the sharded per-server phases (churn
  /// sampling, demand refresh, fault sampling, traffic accounting, thermal
  /// stepping).  0 = hardware concurrency; 1 = serial (no pool).  Results
  /// are bit-identical for every value: all per-tick randomness comes from
  /// counter-based streams keyed by (seed, tick, server), and shared
  /// accumulators are reduced in fixed server order.
  std::size_t threads = 0;

  /// Observability sinks attached to the simulation's event bus at build
  /// time (JSONL trace writer, ring buffer, custom test sinks).  Empty means
  /// event tracing is off — emitters see a disabled bus and pay only a
  /// branch; the metrics registry still accumulates.
  std::vector<std::shared_ptr<obs::Sink>> sinks{};

  /// Structured validation: every problem found, as one human-readable
  /// "field: why" string each.  Empty means the configuration is usable.
  /// The Simulation constructor calls this and throws std::invalid_argument
  /// with the aggregated list; CLI front-ends call it directly to report all
  /// problems at once instead of dying on the first.
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct ServerMetrics {
  util::RunningStats consumed_power;   ///< W, over recorded ticks
  util::RunningStats temperature;      ///< degC
  util::RunningStats utilization;      ///< served dynamic / sustainable dynamic
  double asleep_fraction = 0.0;        ///< recorded ticks spent asleep
  /// Consolidation saving proxy: mean over recorded ticks of the power the
  /// server would have drawn at the scenario's target utilization while it
  /// was actually asleep (Fig. 7's quantity).
  double saved_power_w = 0.0;
};

struct SwitchMetrics {
  hier::NodeId group = hier::kNoNode;
  util::RunningStats power;            ///< per-physical-switch W
  util::RunningStats traffic;          ///< period traffic units
  util::RunningStats migration_cost;   ///< W of temporary demand per period
};

struct SimResult {
  /// PMU leaf id of each entry in `servers`, index-aligned (creation /
  /// paper numbering order — the same order the cluster's arena assigns
  /// slots).  Use the keyed accessors below instead of positional indexing:
  /// positions couple callers to fleet build order, node ids do not.
  std::vector<hier::NodeId> server_nodes;
  std::vector<ServerMetrics> servers;          ///< index-aligned w/ server_nodes
  std::vector<SwitchMetrics> level1_switches;  ///< Fig. 11 / Fig. 12
  util::TimeSeries migrations_per_tick;
  util::TimeSeries demand_migrations_per_tick;
  util::TimeSeries consolidation_migrations_per_tick;
  util::TimeSeries normalized_migration_traffic;  ///< Fig. 10's series
  util::TimeSeries remote_flow_traffic;  ///< IPC units crossing the fabric
  util::TimeSeries mean_flow_hops;       ///< avg switch hops per IPC flow
  util::TimeSeries imbalance;                     ///< Eq. (9) at server level
  util::TimeSeries total_power;                   ///< consumed IT W
  util::TimeSeries supply_series;                 ///< available W at root
  util::TimeSeries intensity_series;              ///< demand multiplier used
  util::TimeSeries facility_power;  ///< IT + cooling W (empty w/o cooling)
  util::TimeSeries pue;             ///< facility / IT (empty w/o cooling)
  util::TimeSeries qos_satisfaction;   ///< demand-weighted SLA fraction
  util::TimeSeries qos_mean_inflation; ///< demand-weighted response inflation
  core::ControllerStats controller_stats;  ///< full run including warm-up
  /// End-of-run snapshot of the event bus's metrics registry: event and
  /// controller counters, packing histograms, per-phase wall-clock timers.
  /// Timer values are wall-clock and thus the one non-deterministic part of
  /// a SimResult; they never enter the event trace.
  obs::MetricsSnapshot metrics;
  long ticks = 0;

  /// Keyed per-server lookup by PMU leaf id; nullptr when `node` is not a
  /// recorded server.  Linear scan — meant for analysis/report code, not hot
  /// loops (those hold handles).
  [[nodiscard]] const ServerMetrics* find_server_metrics(
      hier::NodeId node) const {
    for (std::size_t i = 0; i < server_nodes.size(); ++i) {
      if (server_nodes[i] == node) return &servers[i];
    }
    return nullptr;
  }
  /// As find_server_metrics, but throws std::out_of_range on a miss.
  [[nodiscard]] const ServerMetrics& server_metrics(hier::NodeId node) const {
    if (const ServerMetrics* m = find_server_metrics(node)) return *m;
    throw std::out_of_range("SimResult: no metrics for node " +
                            std::to_string(node));
  }
  /// Handle-keyed lookup: a ServerHandle's index is the arena slot, which is
  /// exactly this result's server ordering.
  [[nodiscard]] const ServerMetrics& server_metrics(
      core::ServerHandle h) const {
    return servers.at(h.index);
  }

  /// Migration counts within the measurement window only (warm-up excluded);
  /// what Fig. 9 plots.
  [[nodiscard]] double measured_demand_migrations() const {
    return demand_migrations_per_tick.stats().sum();
  }
  [[nodiscard]] double measured_consolidation_migrations() const {
    return consolidation_migrations_per_tick.stats().sum();
  }
  /// Highest temperature any server ever reached (thermal-safety check).
  double max_temperature_c = 0.0;
  /// True if any server exceeded its thermal limit at any recorded tick.
  bool thermal_violation = false;
  /// Applications re-migrated within 3 demand periods of their previous move
  /// (whole run): the ping-pong count Property 4 says margins should keep at
  /// zero.  The P_min ablation sweeps this.
  std::uint64_t quick_remigrations = 0;
  /// Workload churn applied during the run.
  std::uint64_t churn_departures = 0;
  std::uint64_t churn_arrivals = 0;
};

class Simulation {
 public:
  explicit Simulation(SimConfig config);

  /// Run warmup + measurement; callable once.
  SimResult run();

  /// Access to the plant (tests inspect it after run()).
  [[nodiscard]] Datacenter& datacenter() { return *dc_; }
  [[nodiscard]] core::Controller& controller() { return *controller_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }

  /// Thermally sustainable dynamic power of the baseline server (W): the
  /// denominator of the simulation's utilization scale.
  [[nodiscard]] double sustainable_dynamic_w() const;

  /// The IPC flows wired at build time (empty unless ipc_chain_fraction > 0).
  [[nodiscard]] const workload::FlowSet& flows() const { return flows_; }

  /// The run's event bus.  SimConfig::sinks are attached at build time; more
  /// sinks may be attached before run().  Also reaches the metrics registry.
  [[nodiscard]] obs::EventBus& event_bus() { return bus_; }

 private:
  void build();

  SimConfig config_;
  obs::EventBus bus_;
  workload::FlowSet flows_;
  workload::AppIdAllocator ids_;
  std::unique_ptr<Datacenter> dc_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<core::Controller> controller_;
  /// Fault-injection state machines; null unless the scenario arms them
  /// (construction is the arming: every fault path in the tick loop is
  /// behind a null check, keeping fault-free runs byte-identical).
  std::unique_ptr<fault::FaultPlane> fault_plane_;
  std::unique_ptr<fault::LinkFaultModel> link_faults_;
  std::unique_ptr<util::Rng> rng_;
  /// Worker pool for the sharded tick phases; null when the effective thread
  /// count is 1 (serial engine, no pool spun up).
  std::unique_ptr<util::ThreadPool> pool_;
  bool ran_ = false;
};

/// Convenience: configure-and-run in one call.
SimResult run_simulation(SimConfig config);

}  // namespace willow::sim
