#include "sim/scenario_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "power/trace_io.h"

namespace willow::sim {

namespace {

using util::Seconds;
using util::Watts;

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("scenario line " + std::to_string(line) + ": " +
                           message);
}

double parse_double(const std::string& text, int line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) fail(line, "trailing junk in number '" + text + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line, "expected a number, got '" + text + "'");
  }
}

long parse_long(const std::string& text, int line) {
  const double v = parse_double(text, line);
  const long l = static_cast<long>(v);
  if (static_cast<double>(l) != v) fail(line, "expected an integer, got '" + text + "'");
  return l;
}

bool parse_bool(const std::string& text, int line) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  fail(line, "expected a boolean, got '" + text + "'");
}

std::vector<std::string> split_words(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

std::shared_ptr<const power::SupplyProfile> parse_supply(
    const std::string& value, int line) {
  const auto words = split_words(value);
  if (words.empty()) fail(line, "empty supply specification");
  const std::string& kind = words[0];
  auto need = [&](std::size_t n) {
    if (words.size() != n + 1) {
      fail(line, "supply '" + kind + "' takes " + std::to_string(n) +
                     " arguments");
    }
  };
  if (kind == "constant") {
    need(1);
    return std::make_shared<power::ConstantSupply>(
        Watts{parse_double(words[1], line)});
  }
  if (kind == "steps") {
    if (words.size() < 2) fail(line, "steps supply needs at least one level");
    std::vector<Watts> levels;
    for (std::size_t i = 1; i < words.size(); ++i) {
      levels.emplace_back(parse_double(words[i], line));
    }
    return std::make_shared<power::SteppedSupply>(std::move(levels),
                                                  Seconds{1.0});
  }
  if (kind == "sine") {
    need(3);
    return std::make_shared<power::SinusoidSupply>(
        Watts{parse_double(words[1], line)},
        Watts{parse_double(words[2], line)},
        Seconds{parse_double(words[3], line)});
  }
  if (kind == "solar") {
    need(5);
    return std::make_shared<power::SolarSupply>(
        Watts{parse_double(words[1], line)},
        Watts{parse_double(words[2], line)},
        Seconds{parse_double(words[3], line)}, parse_double(words[4], line),
        static_cast<unsigned long long>(parse_long(words[5], line)));
  }
  if (kind == "csv") {
    need(1);
    return std::shared_ptr<const power::SupplyProfile>(
        power::load_supply_csv(words[1]).release());
  }
  if (kind == "fig15") {
    need(0);
    return std::shared_ptr<const power::SupplyProfile>(
        power::paper_fig15_trace().release());
  }
  if (kind == "fig19") {
    need(0);
    return std::shared_ptr<const power::SupplyProfile>(
        power::paper_fig19_trace().release());
  }
  fail(line, "unknown supply kind '" + kind + "'");
}

binpack::Algorithm parse_packing(const std::string& text, int line) {
  if (text == "ffdlr") return binpack::Algorithm::kFfdlr;
  if (text == "ff") return binpack::Algorithm::kFirstFit;
  if (text == "ffd") return binpack::Algorithm::kFirstFitDecreasing;
  if (text == "bfd") return binpack::Algorithm::kBestFitDecreasing;
  if (text == "wfd") return binpack::Algorithm::kWorstFitDecreasing;
  fail(line, "unknown packing algorithm '" + text + "'");
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

SimConfig parse_scenario(std::istream& in) {
  SimConfig cfg;
  // Hot-zone directives are applied after layout keys are known.
  long hot_zone_servers = 0;
  double hot_ambient_c = 40.0;
  // Default to the paper's constants; scenario keys can override them.
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();

  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string text = trim(raw);
    if (text.empty()) continue;
    const auto eq = text.find('=');
    if (eq == std::string::npos) fail(line, "expected 'key = value'");
    const std::string key = trim(text.substr(0, eq));
    const std::string value = trim(text.substr(eq + 1));
    if (key.empty() || value.empty()) fail(line, "empty key or value");

    if (key == "schema_version") {
      const long v = parse_long(value, line);
      if (v < 1 || v > kScenarioSchemaVersion) {
        fail(line, "unsupported schema_version " + std::to_string(v) +
                       " (this build reads versions 1.." +
                       std::to_string(kScenarioSchemaVersion) + ")");
      }
    } else if (key == "utilization") {
      cfg.target_utilization = parse_double(value, line);
      if (cfg.target_utilization < 0.0 || cfg.target_utilization > 1.5) {
        fail(line, "utilization out of range");
      }
    } else if (key == "seed") {
      cfg.seed = static_cast<unsigned long long>(parse_long(value, line));
    } else if (key == "warmup_ticks") {
      cfg.warmup_ticks = parse_long(value, line);
    } else if (key == "measure_ticks") {
      cfg.measure_ticks = parse_long(value, line);
    } else if (key == "zones") {
      cfg.datacenter.layout.zones =
          static_cast<std::size_t>(parse_long(value, line));
    } else if (key == "racks_per_zone") {
      cfg.datacenter.layout.racks_per_zone =
          static_cast<std::size_t>(parse_long(value, line));
    } else if (key == "servers_per_rack") {
      cfg.datacenter.layout.servers_per_rack =
          static_cast<std::size_t>(parse_long(value, line));
    } else if (key == "smoothing_alpha") {
      cfg.datacenter.smoothing_alpha = parse_double(value, line);
    } else if (key == "thermal_c1") {
      cfg.datacenter.server.thermal.c1 = parse_double(value, line);
    } else if (key == "thermal_c2") {
      cfg.datacenter.server.thermal.c2 = parse_double(value, line);
    } else if (key == "ambient_c") {
      cfg.datacenter.server.thermal.ambient =
          util::Celsius{parse_double(value, line)};
    } else if (key == "thermal_limit_c") {
      cfg.datacenter.server.thermal.limit =
          util::Celsius{parse_double(value, line)};
    } else if (key == "nameplate_w") {
      cfg.datacenter.server.thermal.nameplate =
          Watts{parse_double(value, line)};
    } else if (key == "hot_zone_servers") {
      hot_zone_servers = parse_long(value, line);
    } else if (key == "hot_ambient_c") {
      hot_ambient_c = parse_double(value, line);
    } else if (key == "margin_w") {
      cfg.controller.margin = Watts{parse_double(value, line)};
    } else if (key == "migration_cost_w") {
      cfg.controller.migration_cost = Watts{parse_double(value, line)};
    } else if (key == "eta1") {
      cfg.controller.eta1 = static_cast<int>(parse_long(value, line));
    } else if (key == "eta2") {
      cfg.controller.eta2 = static_cast<int>(parse_long(value, line));
    } else if (key == "consolidation_threshold") {
      cfg.controller.consolidation_threshold = parse_double(value, line);
    } else if (key == "packing") {
      cfg.controller.packing = parse_packing(value, line);
    } else if (key == "allocation") {
      if (value == "demand") {
        cfg.controller.allocation = core::AllocationPolicy::kProportionalToDemand;
      } else if (value == "capacity") {
        cfg.controller.allocation =
            core::AllocationPolicy::kProportionalToCapacity;
      } else {
        fail(line, "allocation must be 'demand' or 'capacity'");
      }
    } else if (key == "prefer_local") {
      cfg.controller.prefer_local = parse_bool(value, line);
    } else if (key == "enforce_unidirectional") {
      cfg.controller.enforce_unidirectional = parse_bool(value, line);
    } else if (key == "shedding") {
      if (value == "drop") {
        cfg.controller.shedding = core::SheddingPolicy::kDropWhole;
      } else if (value == "degrade") {
        cfg.controller.shedding = core::SheddingPolicy::kDegradeThenDrop;
      } else {
        fail(line, "shedding must be 'drop' or 'degrade'");
      }
    } else if (key == "degraded_service_level") {
      cfg.controller.degraded_service_level = parse_double(value, line);
    } else if (key == "priority_levels") {
      cfg.mix.priority_levels = static_cast<int>(parse_long(value, line));
    } else if (key == "demand_quantum_w") {
      cfg.demand_quantum = Watts{parse_double(value, line)};
    } else if (key == "ipc_chain_fraction") {
      cfg.ipc_chain_fraction = parse_double(value, line);
    } else if (key == "ipc_flow_units") {
      cfg.ipc_flow_units = parse_double(value, line);
    } else if (key == "supply") {
      cfg.supply = parse_supply(value, line);
    } else if (key == "intensity") {
      // constant F | diurnal base amp period [phase] | trace f1 f2 ...
      const auto words = split_words(value);
      if (words.empty()) fail(line, "empty intensity specification");
      if (words[0] == "constant" && words.size() == 2) {
        cfg.intensity = std::make_shared<workload::ConstantIntensity>(
            parse_double(words[1], line));
      } else if (words[0] == "diurnal" &&
                 (words.size() == 4 || words.size() == 5)) {
        cfg.intensity = std::make_shared<workload::DiurnalIntensity>(
            parse_double(words[1], line), parse_double(words[2], line),
            Seconds{parse_double(words[3], line)},
            Seconds{words.size() == 5 ? parse_double(words[4], line) : 0.0});
      } else if (words[0] == "trace" && words.size() >= 2) {
        std::vector<double> factors;
        for (std::size_t i = 1; i < words.size(); ++i) {
          factors.push_back(parse_double(words[i], line));
        }
        cfg.intensity = std::make_shared<workload::TraceIntensity>(
            std::move(factors), Seconds{1.0});
      } else {
        fail(line, "intensity must be 'constant F', 'diurnal base amp period"
                   " [phase]' or 'trace f...'");
      }
    } else if (key == "sla_inflation") {
      cfg.sla_inflation = parse_double(value, line);
    } else if (key == "report_loss_probability") {
      cfg.report_loss_probability = parse_double(value, line);
      if (cfg.report_loss_probability < 0.0 ||
          cfg.report_loss_probability > 1.0) {
        fail(line, "report_loss_probability must be in [0,1]");
      }
    } else if (key == "churn_probability") {
      cfg.churn_probability = parse_double(value, line);
      if (cfg.churn_probability < 0.0 || cfg.churn_probability > 1.0) {
        fail(line, "churn_probability must be in [0,1]");
      }
    } else if (key == "incremental_control") {
      cfg.incremental_control = parse_bool(value, line);
    } else if (key == "shadow_diff") {
      cfg.shadow_diff = parse_bool(value, line);
    } else if (key == "report_deadband_w") {
      cfg.controller.report_deadband = Watts{parse_double(value, line)};
    } else if (key == "threads") {
      const long v = parse_long(value, line);
      if (v < 0) fail(line, "threads must be >= 0");
      cfg.threads = static_cast<std::size_t>(v);
    } else if (key == "migration_periods_per_gib") {
      cfg.controller.migration_periods_per_gib = parse_double(value, line);
    } else if (key == "rack_circuit_w") {
      cfg.rack_circuit_limit = Watts{parse_double(value, line)};
    } else if (key == "cooling_cop") {
      power::CoolingConfig cool;
      cool.cop_at_reference = parse_double(value, line);
      cfg.cooling = power::CoolingModel(cool);
    } else if (key == "link_up_loss_probability") {
      cfg.faults.link.up_loss = parse_double(value, line);
    } else if (key == "link_up_delay_probability") {
      cfg.faults.link.up_delay = parse_double(value, line);
    } else if (key == "link_up_duplicate_probability") {
      cfg.faults.link.up_duplicate = parse_double(value, line);
    } else if (key == "link_down_loss_probability") {
      cfg.faults.link.down_loss = parse_double(value, line);
    } else if (key == "link_down_duplicate_probability") {
      cfg.faults.link.down_duplicate = parse_double(value, line);
    } else if (key == "power_sensor_stuck_probability") {
      cfg.faults.power_sensor.stuck_probability = parse_double(value, line);
    } else if (key == "power_sensor_bias_probability") {
      cfg.faults.power_sensor.bias_probability = parse_double(value, line);
    } else if (key == "power_sensor_dropout_probability") {
      cfg.faults.power_sensor.dropout_probability = parse_double(value, line);
    } else if (key == "power_sensor_bias_w") {
      cfg.faults.power_sensor.bias = parse_double(value, line);
    } else if (key == "temp_sensor_stuck_probability") {
      cfg.faults.temp_sensor.stuck_probability = parse_double(value, line);
    } else if (key == "temp_sensor_bias_probability") {
      cfg.faults.temp_sensor.bias_probability = parse_double(value, line);
    } else if (key == "temp_sensor_dropout_probability") {
      cfg.faults.temp_sensor.dropout_probability = parse_double(value, line);
    } else if (key == "temp_sensor_bias_c") {
      cfg.faults.temp_sensor.bias = parse_double(value, line);
    } else if (key == "sensor_fault_mean_ticks") {
      cfg.faults.sensor_fault_mean_ticks = parse_double(value, line);
    } else if (key == "crash_probability") {
      cfg.faults.crash_probability = parse_double(value, line);
    } else if (key == "crash_down_ticks") {
      cfg.faults.crash_down_ticks = parse_long(value, line);
    } else if (key == "crash_event") {
      // tick first_server last_server [down_ticks]
      const auto words = split_words(value);
      if (words.size() != 3 && words.size() != 4) {
        fail(line, "crash_event takes 'tick first last [down_ticks]'");
      }
      fault::CrashEvent ev;
      ev.tick = parse_long(words[0], line);
      ev.first_server = static_cast<std::size_t>(parse_long(words[1], line));
      ev.last_server = static_cast<std::size_t>(parse_long(words[2], line));
      if (words.size() == 4) ev.down_ticks = parse_long(words[3], line);
      cfg.faults.crash_events.push_back(ev);
    } else if (key == "ups_failure") {
      // first_tick last_tick (inclusive window of failed-open battery)
      const auto words = split_words(value);
      if (words.size() != 2) fail(line, "ups_failure takes 'first last'");
      fault::UpsFailureWindow w;
      w.first_tick = parse_long(words[0], line);
      w.last_tick = parse_long(words[1], line);
      cfg.faults.ups_failures.push_back(w);
    } else if (key == "ups") {
      // capacity_j max_discharge_w max_charge_w [initial_fraction]
      const auto words = split_words(value);
      if (words.size() != 3 && words.size() != 4) {
        fail(line, "ups takes 'capacity_j max_discharge_w max_charge_w"
                   " [initial_fraction]'");
      }
      try {
        cfg.ups.emplace(util::Joules{parse_double(words[0], line)},
                        Watts{parse_double(words[1], line)},
                        Watts{parse_double(words[2], line)},
                        words.size() == 4 ? parse_double(words[3], line) : 1.0);
      } catch (const std::invalid_argument& e) {
        fail(line, e.what());
      }
    } else if (key == "stale_timeout_ticks") {
      cfg.controller.stale_timeout_ticks = parse_long(value, line);
    } else if (key == "stale_decay") {
      cfg.controller.stale_decay = parse_double(value, line);
    } else if (key == "directive_retry_limit") {
      cfg.controller.directive_retry_limit =
          static_cast<int>(parse_long(value, line));
    } else {
      fail(line, "unknown key '" + key + "'");
    }
  }

  if (hot_zone_servers > 0) {
    const auto total = cfg.datacenter.layout.total_servers();
    if (static_cast<std::size_t>(hot_zone_servers) > total) {
      throw std::runtime_error("scenario: hot_zone_servers exceeds fleet size");
    }
    cfg.datacenter.ambient_overrides.assign(
        total, cfg.datacenter.server.thermal.ambient);
    for (std::size_t i = total - static_cast<std::size_t>(hot_zone_servers);
         i < total; ++i) {
      cfg.datacenter.ambient_overrides[i] = util::Celsius{hot_ambient_c};
    }
  }
  try {
    cfg.controller.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }
  if (const auto errors = cfg.validate(); !errors.empty()) {
    std::string msg = "scenario: invalid configuration:";
    for (const auto& e : errors) msg += "\n  - " + e;
    throw std::runtime_error(msg);
  }
  return cfg;
}

SimConfig load_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario file: " + path);
  return parse_scenario(f);
}

const std::vector<ScenarioKeyDoc>& scenario_keys() {
  // Samples are chosen so concatenating every `key = sample` line yields one
  // valid scenario (scenario_keys_roundtrip_test feeds exactly that to
  // parse_scenario).  Keep in lockstep with the if-chain above and with the
  // key table in docs/scenario_format.md — scripts/check_docs_drift.sh
  // cross-checks all three.
  static const std::vector<ScenarioKeyDoc> kKeys = {
      {"schema_version", "2", "optional dialect stamp (reject-if-newer)"},
      {"utilization", "0.7",
       "offered load vs the thermally sustainable envelope"},
      {"seed", "11", "RNG seed (workload build + demand draws)"},
      {"warmup_ticks", "10", "ticks ignored before recording"},
      {"measure_ticks", "120", "ticks recorded"},
      {"zones", "2", "hierarchy shape: datacenter -> zones -> racks"},
      {"racks_per_zone", "3", "racks per zone"},
      {"servers_per_rack", "3", "servers per rack"},
      {"smoothing_alpha", "0.4", "Eq. 4 EWMA weight at every PMU"},
      {"thermal_c1", "0.08", "RC heating coefficient (degC per W per period)"},
      {"thermal_c2", "0.05", "RC cooling rate (1/period)"},
      {"ambient_c", "25", "baseline ambient temperature"},
      {"thermal_limit_c", "60", "hard thermal ceiling"},
      {"nameplate_w", "450", "electrical rating per server"},
      {"hot_zone_servers", "4", "last N servers get the hot ambient"},
      {"hot_ambient_c", "40", "hot-zone ambient temperature"},
      {"margin_w", "1.5", "P_min post-migration surplus floor"},
      {"migration_cost_w", "0.5", "temporary demand per migration endpoint"},
      {"eta1", "3", "supply-adaptation period multiplier (DeltaS)"},
      {"eta2", "9", "consolidation period multiplier (DeltaA)"},
      {"consolidation_threshold", "0.5",
       "utilization below which servers drain"},
      {"packing", "ffdlr", "ffdlr | ff | ffd | bfd | wfd"},
      {"allocation", "demand", "demand | capacity proportional division"},
      {"prefer_local", "true", "local-first migration planning"},
      {"enforce_unidirectional", "true",
       "no migrations into reduced, deficient subtrees"},
      {"shedding", "degrade", "drop | degrade (degrade-then-drop)"},
      {"degraded_service_level", "0.5", "service floor under degrade"},
      {"priority_levels", "3", "shedding priority classes, assigned randomly"},
      {"demand_quantum_w", "1", "Poisson quantum (variance knob)"},
      {"ipc_chain_fraction", "0.0",
       "fraction of each server's apps wired into an IPC chain"},
      {"ipc_flow_units", "0.25", "traffic units per IPC flow"},
      {"supply", "sine 420 120 48",
       "constant W | steps w... | sine base amp period | solar floor peak "
       "day cloud seed | csv path | fig15 | fig19"},
      {"intensity", "constant 1.0",
       "constant F | diurnal base amp period [phase] | trace f..."},
      {"sla_inflation", "5", "enable the QoS tracker (M/M/1 inflation SLA)"},
      {"report_loss_probability", "0.1",
       "legacy fault knob: lost demand reports per server-tick"},
      {"churn_probability", "0.05",
       "per-server chance per tick of one app departing + one arriving"},
      {"incremental_control", "true",
       "change-driven control plane (identical trace to full recompute)"},
      {"shadow_diff", "false",
       "re-derive every incremental skip; abort on bitwise divergence"},
      {"report_deadband_w", "0.25",
       "min demand movement before a node re-reports"},
      {"threads", "1",
       "tick-engine workers (0 = hw concurrency, 1 = serial; bit-identical)"},
      {"migration_periods_per_gib", "0.5",
       "VM transfer latency (0 = instantaneous)"},
      {"rack_circuit_w", "500", "under-designed rack feed rating (every rack)"},
      {"cooling_cop", "4.0", "enable the cooling plant (records PUE)"},
      {"link_up_loss_probability", "0.05",
       "demand report lost (child retries)"},
      {"link_up_delay_probability", "0.05",
       "demand report deferred to the next sweep"},
      {"link_up_duplicate_probability", "0.02",
       "report delivered twice (idempotent; counted)"},
      {"link_down_loss_probability", "0.05",
       "budget directive lost (enters the retry queue)"},
      {"link_down_duplicate_probability", "0.02",
       "directive delivered twice"},
      {"power_sensor_stuck_probability", "0.01",
       "per-tick power-sensor stuck-at onset"},
      {"power_sensor_bias_probability", "0.01",
       "per-tick power-sensor bias onset"},
      {"power_sensor_dropout_probability", "0.01",
       "per-tick power-sensor dropout onset"},
      {"power_sensor_bias_w", "4", "offset during a power-sensor bias episode"},
      {"temp_sensor_stuck_probability", "0.01",
       "per-tick temperature-sensor stuck-at onset"},
      {"temp_sensor_bias_probability", "0.01",
       "per-tick temperature-sensor bias onset"},
      {"temp_sensor_dropout_probability", "0.01",
       "per-tick temperature-sensor dropout onset"},
      {"temp_sensor_bias_c", "3",
       "offset during a temperature-sensor bias episode"},
      {"sensor_fault_mean_ticks", "5",
       "mean episode duration: 1 + Exp(mean - 1) ticks"},
      {"crash_probability", "0.002",
       "per-server, per-tick fail-stop crash onset"},
      {"crash_down_ticks", "10", "outage length for probabilistic crashes"},
      {"crash_event", "40 0 1 8",
       "scripted outage: tick first last [down_ticks]; repeatable"},
      {"ups", "90000 220 160 0.8",
       "capacity_j max_discharge_w max_charge_w [initial_fraction]"},
      {"ups_failure", "60 80",
       "battery failed open over ticks [first, last); repeatable"},
      {"stale_timeout_ticks", "3",
       "degraded mode: reports stale after N silent ticks (0 = off)"},
      {"stale_decay", "0.9",
       "per-tick decay of a stale leaf's synthetic demand"},
      {"directive_retry_limit", "3",
       "lost-directive retries with binary backoff before abandoning"},
  };
  return kKeys;
}

bool is_scenario_key(const std::string& key) {
  for (const auto& doc : scenario_keys()) {
    if (doc.key == key) return true;
  }
  return false;
}

}  // namespace willow::sim
