# Empty dependencies file for willow_sim.
# This may be replaced when dependencies are built.
