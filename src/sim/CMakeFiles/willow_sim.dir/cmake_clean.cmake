file(REMOVE_RECURSE
  "CMakeFiles/willow_sim.dir/datacenter.cc.o"
  "CMakeFiles/willow_sim.dir/datacenter.cc.o.d"
  "CMakeFiles/willow_sim.dir/result_io.cc.o"
  "CMakeFiles/willow_sim.dir/result_io.cc.o.d"
  "CMakeFiles/willow_sim.dir/scenario_io.cc.o"
  "CMakeFiles/willow_sim.dir/scenario_io.cc.o.d"
  "CMakeFiles/willow_sim.dir/simulation.cc.o"
  "CMakeFiles/willow_sim.dir/simulation.cc.o.d"
  "libwillow_sim.a"
  "libwillow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
