file(REMOVE_RECURSE
  "libwillow_sim.a"
)
