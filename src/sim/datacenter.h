// Topology builders for the paper's simulation set-up.
//
// Figure 3: a four-level power-control hierarchy with 18 server nodes
// (datacenter -> 2 zones -> 3 racks each -> 3 servers each).  Figure 8's
// switch configuration mirrors it one-for-one, which net::Fabric derives
// directly from the PMU tree.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "util/units.h"

namespace willow::sim {

using util::Celsius;
using util::Watts;

struct DatacenterLayout {
  std::size_t zones = 2;
  std::size_t racks_per_zone = 3;
  std::size_t servers_per_rack = 3;

  [[nodiscard]] std::size_t total_servers() const {
    return zones * racks_per_zone * servers_per_rack;
  }
};

struct DatacenterOptions {
  DatacenterLayout layout{};
  /// Eq. (4) smoothing constant for every PMU node.
  double smoothing_alpha = 0.7;
  /// Thermal constants chosen in Sec. V-B2 (c1 = 0.08, c2 = 0.05, 450 W).
  core::ServerConfig server{};
  /// Ambient temperature per server index; missing entries default to the
  /// server config's ambient.  Used for the hot-zone scenarios (Sec. V-B3).
  std::vector<Celsius> ambient_overrides{};
};

/// The built plant: the Cluster plus convenient handles.
struct Datacenter {
  explicit Datacenter(double smoothing_alpha) : cluster(smoothing_alpha) {}

  core::Cluster cluster;
  hier::NodeId root = hier::kNoNode;
  std::vector<hier::NodeId> zones;
  std::vector<hier::NodeId> racks;
  std::vector<hier::NodeId> servers;  ///< in paper numbering order (0-based)
};

/// Build a datacenter with the given shape.  Server i's ambient temperature
/// comes from ambient_overrides[i] when present.
std::unique_ptr<Datacenter> build_datacenter(const DatacenterOptions& options);

/// The exact Fig.-3 configuration: 4 levels, 18 servers, paper thermal
/// constants, all-25degC ambient.
std::unique_ptr<Datacenter> build_paper_datacenter();

/// Fig.-3 configuration with the Sec. V-B3 hot zone: servers 1..14 at 25degC
/// ambient, servers 15..18 at `hot` (paper: 40degC).
std::unique_ptr<Datacenter> build_paper_datacenter_hot_zone(
    Celsius hot = Celsius{40.0});

}  // namespace willow::sim
