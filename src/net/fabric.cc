#include "net/fabric.h"

#include <stdexcept>

namespace willow::net {

Fabric::Fabric(const hier::Tree& tree, FabricConfig config)
    : tree_(tree), config_(config), group_index_(tree.size(), -1) {
  if (config_.redundancy == 0) {
    throw std::invalid_argument("Fabric: redundancy must be >= 1");
  }
  if (!(config_.switch_capacity > 0.0)) {
    throw std::invalid_argument("Fabric: switch_capacity must be > 0");
  }
  for (NodeId id : tree.all_nodes()) {
    if (!tree.node(id).is_leaf()) {
      group_index_[id] = static_cast<int>(groups_.size());
      groups_.push_back(id);
      stats_.emplace_back();
    }
  }
}

std::vector<NodeId> Fabric::level1_groups() const {
  std::vector<NodeId> out;
  for (NodeId g : groups_) {
    for (NodeId c : tree_.node(g).children()) {
      if (tree_.node(c).is_leaf()) {
        out.push_back(g);
        break;
      }
    }
  }
  return out;
}

const GroupStats& Fabric::stats(NodeId group) const {
  const int idx = group_index_.at(group);
  if (idx < 0) throw std::out_of_range("Fabric: node has no switch group");
  return stats_[static_cast<std::size_t>(idx)];
}

GroupStats& Fabric::mutable_stats(NodeId group) {
  const int idx = group_index_.at(group);
  if (idx < 0) throw std::out_of_range("Fabric: node has no switch group");
  return stats_[static_cast<std::size_t>(idx)];
}

void Fabric::begin_period() {
  for (auto& s : stats_) {
    s.period_traffic = 0.0;
    s.period_migration_traffic = 0.0;
    s.period_flow_traffic = 0.0;
    s.period_migration_cost = Watts{0.0};
  }
}

void Fabric::add_server_traffic(NodeId server, double units) {
  if (units < 0.0) {
    throw std::invalid_argument("add_server_traffic: negative units");
  }
  for (NodeId cur = tree_.node(server).parent(); cur != hier::kNoNode;
       cur = tree_.node(cur).parent()) {
    auto& s = mutable_stats(cur);
    s.period_traffic += units;
    s.total_traffic += units;
  }
}

NodeId Fabric::lca(NodeId a, NodeId b) const {
  // Walk the deeper node up until depths match, then climb together.
  NodeId x = a, y = b;
  while (tree_.node(x).depth() > tree_.node(y).depth()) x = tree_.node(x).parent();
  while (tree_.node(y).depth() > tree_.node(x).depth()) y = tree_.node(y).parent();
  while (x != y) {
    x = tree_.node(x).parent();
    y = tree_.node(y).parent();
  }
  return x;
}

std::size_t Fabric::add_migration(NodeId from_server, NodeId to_server,
                                  double payload_units) {
  if (payload_units < 0.0) {
    throw std::invalid_argument("add_migration: negative payload");
  }
  // A degenerate self-migration still transits the server's edge switch.
  const NodeId meet = from_server == to_server
                          ? tree_.node(from_server).parent()
                          : lca(from_server, to_server);
  std::size_t hops = 0;
  auto deposit = [&](NodeId group) {
    auto& s = mutable_stats(group);
    s.period_traffic += payload_units;
    s.period_migration_traffic += payload_units;
    s.total_traffic += payload_units;
    s.total_migration_traffic += payload_units;
    s.period_migration_cost +=
        Watts{config_.migration_cost_w_per_unit * payload_units};
    ++hops;
  };
  // Up from the source's parent to the LCA (inclusive)...
  for (NodeId cur = tree_.node(from_server).parent();;
       cur = tree_.node(cur).parent()) {
    deposit(cur);
    if (cur == meet) break;
  }
  // ...then down to the destination's parent (exclusive of the LCA).
  std::vector<NodeId> down;
  for (NodeId cur = tree_.node(to_server).parent(); cur != meet;
       cur = tree_.node(cur).parent()) {
    down.push_back(cur);
  }
  for (auto it = down.rbegin(); it != down.rend(); ++it) deposit(*it);
  return hops;
}

std::size_t Fabric::add_flow_traffic(NodeId server_a, NodeId server_b,
                                     double units) {
  if (units < 0.0) {
    throw std::invalid_argument("add_flow_traffic: negative units");
  }
  if (server_a == server_b) return 0;  // co-located: stays on the host
  const NodeId meet = lca(server_a, server_b);
  std::size_t hops = 0;
  auto deposit = [&](NodeId group) {
    auto& s = mutable_stats(group);
    s.period_traffic += units;
    s.period_flow_traffic += units;
    s.total_traffic += units;
    s.total_flow_traffic += units;
    ++hops;
  };
  for (NodeId cur = tree_.node(server_a).parent();;
       cur = tree_.node(cur).parent()) {
    deposit(cur);
    if (cur == meet) break;
  }
  std::vector<NodeId> down;
  for (NodeId cur = tree_.node(server_b).parent(); cur != meet;
       cur = tree_.node(cur).parent()) {
    down.push_back(cur);
  }
  for (auto it = down.rbegin(); it != down.rend(); ++it) deposit(*it);
  return hops;
}

Watts Fabric::switch_power(NodeId group) const {
  const auto& s = stats(group);
  const double per_switch =
      s.period_traffic / static_cast<double>(config_.redundancy);
  return config_.power.power(per_switch);
}

Watts Fabric::group_power(NodeId group) const {
  return switch_power(group) * static_cast<double>(config_.redundancy);
}

double Fabric::utilization(NodeId group) const {
  const auto& s = stats(group);
  return s.period_traffic /
         (config_.switch_capacity * static_cast<double>(config_.redundancy));
}

double Fabric::normalized_migration_traffic() const {
  double mig = 0.0;
  for (const auto& s : stats_) mig += s.period_migration_traffic;
  const double capacity = config_.switch_capacity *
                          static_cast<double>(config_.redundancy) *
                          static_cast<double>(stats_.size());
  return capacity > 0.0 ? mig / capacity : 0.0;
}

Watts Fabric::total_migration_cost() const {
  Watts total{0.0};
  for (const auto& s : stats_) total += s.period_migration_cost;
  return total;
}

}  // namespace willow::net
