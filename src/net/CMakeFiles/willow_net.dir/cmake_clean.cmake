file(REMOVE_RECURSE
  "CMakeFiles/willow_net.dir/fabric.cc.o"
  "CMakeFiles/willow_net.dir/fabric.cc.o.d"
  "libwillow_net.a"
  "libwillow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/willow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
