
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fabric.cc" "src/net/CMakeFiles/willow_net.dir/fabric.cc.o" "gcc" "src/net/CMakeFiles/willow_net.dir/fabric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/willow_util.dir/DependInfo.cmake"
  "/root/repo/src/hier/CMakeFiles/willow_hier.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/willow_power.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/willow_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
