file(REMOVE_RECURSE
  "libwillow_net.a"
)
