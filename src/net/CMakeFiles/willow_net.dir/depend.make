# Empty dependencies file for willow_net.
# This may be replaced when dependencies are built.
