// The data-center switch fabric — Section V-B5 (Fig. 8).
//
// "We can easily observe the correspondence of the switch configuration in
//  Figure 8 and the power control hierarchy in Figure 3": every internal PMU
//  node has a switch (group) beside it; level-1 switches attach servers,
//  higher levels aggregate.  Redundant paths are modeled as groups of
//  parallel switches that split load evenly ("the load is balanced evenly
//  between the switches", as in data centers with redundant network paths).
//
// The fabric accounts two kinds of load per control period:
//  * base traffic — user queries entering at the root and descending to the
//    hosting server (transactional workloads, Sec. IV-E), proportional to
//    server utilization;
//  * migration traffic — VM payloads routed server -> LCA -> server, which
//    also deposit a migration *cost* (temporary power demand) on every
//    switch group they cross (Sec. IV-E "Migration Cost").
#pragma once

#include <vector>

#include "hier/tree.h"
#include "power/switch_power.h"
#include "util/units.h"

namespace willow::net {

using hier::NodeId;
using util::Watts;

struct FabricConfig {
  /// Parallel switches per group (>= 1); load splits evenly across them.
  std::size_t redundancy = 2;
  /// Traffic capacity of one switch, in traffic units (1.0 == one fully
  /// utilized server's query traffic).  Used to normalize Fig. 10.
  double switch_capacity = 10.0;
  /// Power model applied per physical switch.
  power::SwitchPowerModel power = power::SwitchPowerModel::paper_simulation();
  /// Temporary power demand deposited on each switch group per unit of
  /// migration payload crossing it (Sec. IV-E migration cost, Fig. 12).
  double migration_cost_w_per_unit = 2.0;
};

/// Cumulative and per-period statistics for one switch group.
struct GroupStats {
  double period_traffic = 0.0;            ///< all components, this period
  double period_migration_traffic = 0.0;  ///< migration component
  double period_flow_traffic = 0.0;       ///< inter-server IPC component
  Watts period_migration_cost{0.0};       ///< temporary power demand
  double total_traffic = 0.0;
  double total_migration_traffic = 0.0;
  double total_flow_traffic = 0.0;
};

class Fabric {
 public:
  /// Build mirroring `tree`: one switch group per internal PMU node.
  /// The tree must outlive the fabric.
  Fabric(const hier::Tree& tree, FabricConfig config);

  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// Internal PMU nodes that have a switch group, in creation order.
  [[nodiscard]] const std::vector<NodeId>& groups() const { return groups_; }
  /// Switch groups whose children are servers (the paper's "level 1"
  /// switches).
  [[nodiscard]] std::vector<NodeId> level1_groups() const;

  [[nodiscard]] const GroupStats& stats(NodeId group) const;

  /// Zero the per-period counters (call at each demand period).
  void begin_period();

  /// Base query traffic for one server this period: deposited on every
  /// switch group from the root to the server's parent.
  void add_server_traffic(NodeId server, double units);

  /// A migration of `payload_units` from one server to another: traffic and
  /// migration cost deposited on every group along from -> LCA -> to.
  /// Returns the number of switch groups crossed (the hop count).
  std::size_t add_migration(NodeId from_server, NodeId to_server,
                            double payload_units);

  /// Steady inter-server application traffic (IPC between VMs whose hosts
  /// differ): deposited along the server-to-server path like a migration but
  /// without migration cost.  Co-located endpoints deposit nothing.  Returns
  /// the hop count (0 when co-located).
  std::size_t add_flow_traffic(NodeId server_a, NodeId server_b, double units);

  /// Electrical power of one *physical switch* in the group right now
  /// (period traffic split evenly across the group's redundant switches).
  [[nodiscard]] Watts switch_power(NodeId group) const;

  /// Aggregate power of all physical switches in the group.
  [[nodiscard]] Watts group_power(NodeId group) const;

  /// Period traffic of the group as a fraction of the group's total capacity
  /// (redundancy * switch_capacity); may exceed 1 if oversubscribed.
  [[nodiscard]] double utilization(NodeId group) const;

  /// Migration traffic of the whole fabric this period, normalized by total
  /// fabric capacity — the quantity Fig. 10 plots.
  [[nodiscard]] double normalized_migration_traffic() const;

  /// Sum of period migration cost over the given groups.
  [[nodiscard]] Watts total_migration_cost() const;

 private:
  [[nodiscard]] NodeId lca(NodeId a, NodeId b) const;
  GroupStats& mutable_stats(NodeId group);

  const hier::Tree& tree_;
  FabricConfig config_;
  std::vector<NodeId> groups_;
  std::vector<int> group_index_;  ///< NodeId -> index into stats_, -1 if none
  std::vector<GroupStats> stats_;
};

}  // namespace willow::net
