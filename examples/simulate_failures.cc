// Simulating failures: run the fleet through a bad day and watch the
// controller degrade gracefully.
//
//   $ ./simulate_failures [trace.jsonl]
//
// A 16-server fleet faces three overlapping problems (docs/fault_model.md):
//   - a lossy management network (reports and directives dropped),
//   - flaky power sensors (stuck-at / bias / dropout episodes),
//   - a scripted rack outage that lands in the middle of a supply dip.
// Degraded mode is armed (stale timeouts, fallback budgets, directive
// retries).  Afterwards we narrate every fault and recovery event from the
// ring buffer and print the fault.* counters.  The whole schedule is a pure
// function of the seed: re-running with a different `threads` value yields
// byte-identical traces.
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "obs/sink.h"
#include "power/supply.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  // --- 1. The fleet, the dip, and the fault schedule. ----------------------
  sim::SimConfig cfg;
  cfg.datacenter.layout = {1, 2, 8};  // 16 servers
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.6;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 50;
  cfg.seed = 2026;
  std::vector<util::Watts> levels(60, 4000_W);
  for (int t = 30; t < 42; ++t) levels[t] = 2600_W;  // twelve-tick dip
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);

  // Lossy management network.
  cfg.faults.link.up_loss = 0.05;
  cfg.faults.link.up_delay = 0.03;
  cfg.faults.link.down_loss = 0.05;
  // Flaky power sensors: stuck/bias/dropout episodes, dropouts dominating
  // (a dropped-out sensor goes silent, which is what exercises staleness).
  cfg.faults.power_sensor.stuck_probability = 0.005;
  cfg.faults.power_sensor.bias_probability = 0.005;
  cfg.faults.power_sensor.dropout_probability = 0.02;
  cfg.faults.power_sensor.bias = 6.0;
  cfg.faults.sensor_fault_mean_ticks = 6.0;
  // Servers 0..3 (half of rack 0) crash at tick 32 — inside the dip — and
  // restart eight ticks later.  Any of the four already consolidated asleep
  // dodges the outage: sleeping servers are not crash-eligible.
  cfg.faults.crash_events.push_back({32, 0, 3, 8});
  // Degraded mode: declare silence after 2 ticks, decay toward idle,
  // retry lost directives up to 3 times.
  cfg.controller.stale_timeout_ticks = 2;
  cfg.controller.stale_decay = 0.9;
  cfg.controller.directive_retry_limit = 3;

  // --- 2. Sinks: ring buffer always, JSONL trace if asked. -----------------
  auto ring = std::make_shared<obs::RingBufferSink>(1u << 16);
  cfg.sinks.push_back(ring);
  if (argc > 1) {
    cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(argv[1]));
  }

  const auto result = sim::run_simulation(std::move(cfg));

  // --- 3. Narrate the outage and the degraded-mode response. ---------------
  std::cout << "== fault and recovery events ==\n";
  for (const auto& e : ring->events()) {
    switch (e.type) {
      case obs::EventType::kNodeDown:
      case obs::EventType::kNodeUp:
      case obs::EventType::kResyncComplete:
      case obs::EventType::kStaleTimeout:
      case obs::EventType::kFallbackBudget:
      case obs::EventType::kSensorFault:
      case obs::EventType::kUpsFail:
      case obs::EventType::kUpsRestore:
        std::cout << "  " << obs::describe(e) << '\n';
        break;
      default:
        break;  // link drops and retries are counted below; too chatty here
    }
  }

  // --- 4. The fault ledger. ------------------------------------------------
  std::cout << "\n== fault counters ==\n";
  util::Table counters({"counter", "value"});
  for (const auto& c : result.metrics.counters) {
    if (c.name.rfind("fault.", 0) == 0) {
      counters.row().add(c.name).add(static_cast<long long>(c.value));
    }
  }
  counters.print(std::cout);

  std::cout << "\nmean power " << result.total_power.stats().mean()
            << " W, migrations "
            << result.controller_stats.total_migrations()
            << ", max temperature " << result.max_temperature_c
            << " degC (limit 70)\n";
  if (argc > 1) {
    std::cout << "(JSONL trace written to " << argv[1]
              << "; byte-identical for any `threads` setting)\n";
  }
  return 0;
}
