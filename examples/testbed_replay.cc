// Full replay of the paper's Section V-C experimental sequence on the
// emulated three-server testbed:
//
//   1. baseline power-vs-utilization calibration (Table I)
//   2. thermal constant estimation (Fig. 14)
//   3. application profiling (Table II)
//   4. the energy-deficient run (Figs. 15-18)
//   5. the energy-plenty consolidation run (Fig. 19, Table III)
//
//   $ ./testbed_replay
#include <iostream>

#include "testbed/testbed.h"
#include "thermal/calibration.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;
using willow::util::Watts;
using willow::util::Seconds;

int main() {
  std::cout << "=== 1. Baseline: utilization vs power (Table I) ===\n";
  util::Table t1({"utilization_%", "avg_power_W"});
  t1.set_precision(1);
  for (const auto& [u, w] :
       testbed::table1_measurements({0.0, 0.2, 0.4, 0.6, 0.8, 1.0})) {
    t1.row().add(u * 100.0).add(w.value());
  }
  t1.print(std::cout);

  std::cout << "\n=== 2. Thermal calibration (Fig. 14) ===\n";
  const auto truth = testbed::paper_fitted_thermal_params();
  const auto trace = thermal::synthesize_trace(
      truth, {20_W, 50_W, 80_W, 40_W, 65_W}, 8_s, Seconds{0.5}, 0.2, 77);
  const auto fit = thermal::fit_thermal_constants(trace, truth.ambient);
  std::cout << "fitted c1 = " << fit.c1 << " (paper 0.2), c2 = " << fit.c2
            << " (paper 0.008)\n";

  std::cout << "\n=== 3. Application profiling (Table II) ===\n";
  for (const auto& [name, w] : testbed::profile_applications()) {
    std::cout << "  " << name << ": +" << w.value() << " W\n";
  }

  std::cout << "\n=== 4. Energy-deficient run (Figs. 15-18) ===\n";
  {
    testbed::Testbed tb;
    tb.load_utilizations(0.8, 0.6, 0.3);
    const auto supply = power::paper_fig15_trace();
    const auto r = tb.run(*supply, 30);
    util::Table t({"t", "supply_W", "migrations", "temp_A", "avg_temp"});
    t.set_precision(1);
    for (std::size_t i = 0; i < r.supply.size(); ++i) {
      t.row()
          .add(static_cast<long long>(i))
          .add(r.supply.at(i))
          .add(r.migrations.at(i))
          .add(r.temperature_a.at(i))
          .add(r.avg_temperature.at(i));
    }
    t.print(std::cout);
    std::cout << "migrations " << r.stats.total_migrations() << ", drops "
              << r.stats.drops << ", revivals " << r.stats.revivals
              << ", ping-pong: " << (r.ping_pong ? "YES" : "no") << "\n";
  }

  std::cout << "\n=== 5. Energy-plenty consolidation (Fig. 19, Table III) ===\n";
  {
    testbed::Testbed tb;
    tb.load_utilizations(0.8, 0.4, 0.2);
    const auto supply = power::paper_fig19_trace();
    const auto r = tb.run(*supply, 30);
    const char* names[] = {"A", "B", "C"};
    for (int i = 0; i < 3; ++i) {
      std::cout << "  server " << names[i] << ": final utilization "
                << r.final_utilization[i] * 100.0 << "% "
                << (r.asleep[i] ? "(shut down)" : "(running)") << "\n";
    }
    double after = 0.0;
    for (int i = 0; i < 3; ++i) after += r.consumed[i].mean_between(20.0, 30.0);
    std::cout << "  power: ~580 W unconsolidated -> " << after
              << " W, saving " << (580.0 - after) / 580.0 * 100.0
              << "% (paper: ~27.5%)\n";
  }
  return 0;
}
