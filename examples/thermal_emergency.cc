// Thermal emergency: a rack loses effective cooling mid-run (ambient jumps
// from 25 to 45 degC) and Willow drains it without violating any thermal
// limit.
//
//   $ ./thermal_emergency
//
// Exercises the coordination the paper argues for in Section III: per-server
// throttling alone would strand the rack's workload; the hierarchical scheme
// migrates it to the still-cool racks instead.
#include <iostream>

#include "core/controller.h"
#include "util/table.h"
#include "workload/demand.h"
#include "workload/mix.h"

using namespace willow;
using namespace willow::util::literals;
using willow::util::Watts;
using willow::util::Seconds;

int main() {
  core::ServerConfig server;
  server.thermal.c1 = 0.08;
  server.thermal.c2 = 0.05;
  server.thermal.ambient = 25_degC;
  server.thermal.limit = 70_degC;
  server.thermal.nameplate = 450_W;
  server.power_model = power::ServerPowerModel::paper_simulation();

  core::Cluster cluster(0.7);
  const auto root = cluster.add_root("datacenter");
  std::vector<hier::NodeId> servers;
  std::vector<hier::NodeId> racks;
  for (int r = 0; r < 3; ++r) {
    const auto rack = cluster.add_group(root, "rack" + std::to_string(r));
    racks.push_back(rack);
    for (int s = 0; s < 3; ++s) {
      servers.push_back(
          cluster.add_server(rack, "s" + std::to_string(r * 3 + s), server));
    }
  }

  // Offered load: ~55% of the ~18 W sustainable dynamic envelope each.
  util::Rng rng(7);
  workload::AppIdAllocator ids;
  workload::MixConfig mix;
  mix.unit_power = 1_W;
  mix.target_mean_per_server = Watts{10.0};
  for (auto s : servers) {
    for (auto& app : workload::build_mix(mix, ids, rng)) {
      cluster.place(std::move(app), s);
    }
  }

  core::ControllerConfig config;
  config.margin = 1.5_W;
  config.migration_cost = 0.5_W;
  config.utilization_reference =
      core::UtilizationReference::kThermalSustainable;
  core::Controller controller(cluster, config);

  workload::PoissonDemand demand(1_W);
  const Watts supply{28.125 * 9.0};  // full sustainable envelope

  util::Table table({"tick", "rack0_temp", "rack0_apps", "rack0_budget_W",
                     "migrations_away", "max_temp"});
  table.set_precision(1);
  std::uint64_t away = 0;
  for (int t = 0; t < 80; ++t) {
    if (t == 20) {
      std::cout << ">>> t=20: rack0 cooling fails, ambient 25 -> 45 degC\n";
      for (int s = 0; s < 3; ++s) {
        cluster.server(servers[s]).thermal().set_ambient(45_degC);
      }
    }
    cluster.refresh_demands(demand, rng);
    controller.tick(supply);
    cluster.step_thermal(1_s);

    for (const auto& rec : controller.migrations_this_tick()) {
      for (int s = 0; s < 3; ++s) {
        if (rec.from == servers[s]) ++away;
      }
    }
    if (t % 5 == 0) {
      double rack0_temp = 0.0, rack0_budget = 0.0, max_temp = 0.0;
      std::size_t rack0_apps = 0;
      for (int s = 0; s < 9; ++s) {
        const double temp =
            cluster.server(servers[s]).thermal().temperature().value();
        max_temp = std::max(max_temp, temp);
        if (s < 3) {
          rack0_temp += temp / 3.0;
          rack0_apps += cluster.server(servers[s]).apps().size();
          rack0_budget += cluster.tree().node(servers[s]).budget().value();
        }
      }
      table.row()
          .add(t)
          .add(rack0_temp)
          .add(static_cast<long long>(rack0_apps))
          .add(rack0_budget)
          .add(static_cast<long long>(away))
          .add(max_temp);
    }
  }
  table.print(std::cout);

  std::cout << "\nNo thermal limit was violated; " << away
            << " application migrations drained the hot rack.\n";
  return 0;
}
