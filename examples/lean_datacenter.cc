// The "lean design" story from the paper's introduction, end to end:
//
//   "A leaner design could take many forms including smaller power supplies,
//    ... under-engineering uninterrupted power supplies (UPS), underdesigned
//    rack power circuits, etc.  All these forms of lean design increase the
//    probability that the data center will be occasionally under-powered and
//    thus needs mechanisms to cope with it."
//
// This fleet has under-designed rack feeds, a small UPS, a noisy grid feed,
// QoS tracking, and degrade-then-drop shedding with three priority classes —
// Willow keeps the lights on and reports what the leanness cost.
//
//   $ ./lean_datacenter
#include <iostream>

#include "hier/dump.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;
using willow::util::Watts;
using willow::util::Seconds;

int main() {
  sim::SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();

  cfg.target_utilization = 0.6;
  cfg.mix.priority_levels = 3;
  cfg.controller.shedding = core::SheddingPolicy::kDegradeThenDrop;
  cfg.controller.target_fill_fraction = 0.85;
  cfg.sla_inflation = 5.0;

  // Lean hardware: rack feeds sized for ~80% of the thermal envelope of
  // their three servers, a small UPS, and a feed that sags periodically.
  cfg.rack_circuit_limit = Watts{28.125 * 3.0 * 0.8};
  cfg.ups = power::Ups(util::Joules{200.0}, 120_W, 50_W, 1.0);
  cfg.supply = std::make_shared<power::SinusoidSupply>(
      Watts{28.125 * 18.0 * 0.9}, Watts{28.125 * 18.0 * 0.2}, Seconds{16.0});

  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 80;
  cfg.seed = 5;

  sim::Simulation simulation(std::move(cfg));
  const auto r = simulation.run();

  util::Table table({"metric", "value"});
  table.set_precision(2);
  table.row().add("mean supply (W)").add(r.supply_series.stats().mean());
  table.row().add("mean IT power (W)").add(r.total_power.stats().mean());
  table.row().add("SLA satisfaction (%)").add(
      r.qos_satisfaction.stats().mean() * 100.0);
  table.row().add("mean response inflation (x)").add(
      r.qos_mean_inflation.stats().mean());
  table.row().add("max temperature (degC)").add(r.max_temperature_c);
  const auto& st = r.controller_stats;
  table.row().add("migrations").add(
      static_cast<long long>(st.total_migrations()));
  table.row().add("drops / revivals").add(
      std::to_string(st.drops) + " / " + std::to_string(st.revivals));
  table.row().add("degrades / restores").add(
      std::to_string(st.degrades) + " / " + std::to_string(st.restores));
  table.row().add("sleeps / wakes").add(
      std::to_string(st.sleeps) + " / " + std::to_string(st.wakes));
  table.print(std::cout);

  std::cout << "\nFinal hierarchy state:\n";
  hier::dump_tree(simulation.datacenter().cluster.tree(), std::cout);
  return 0;
}
