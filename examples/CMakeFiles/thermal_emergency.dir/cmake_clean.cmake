file(REMOVE_RECURSE
  "CMakeFiles/thermal_emergency.dir/thermal_emergency.cc.o"
  "CMakeFiles/thermal_emergency.dir/thermal_emergency.cc.o.d"
  "thermal_emergency"
  "thermal_emergency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_emergency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
