# Empty compiler generated dependencies file for thermal_emergency.
# This may be replaced when dependencies are built.
