# Empty compiler generated dependencies file for lean_datacenter.
# This may be replaced when dependencies are built.
