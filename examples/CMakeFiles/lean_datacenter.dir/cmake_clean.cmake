file(REMOVE_RECURSE
  "CMakeFiles/lean_datacenter.dir/lean_datacenter.cc.o"
  "CMakeFiles/lean_datacenter.dir/lean_datacenter.cc.o.d"
  "lean_datacenter"
  "lean_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lean_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
