# Empty dependencies file for renewable_datacenter.
# This may be replaced when dependencies are built.
