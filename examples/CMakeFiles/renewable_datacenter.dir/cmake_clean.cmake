file(REMOVE_RECURSE
  "CMakeFiles/renewable_datacenter.dir/renewable_datacenter.cc.o"
  "CMakeFiles/renewable_datacenter.dir/renewable_datacenter.cc.o.d"
  "renewable_datacenter"
  "renewable_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renewable_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
