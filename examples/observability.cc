// Observability: watch the controller think.
//
//   $ ./observability [trace.jsonl]
//
// Runs a supply-dip scenario with two sinks attached: an in-memory ring
// buffer that we decode afterwards to narrate every migration (with its
// reason code), throttle, and sleep/wake decision, and — when a path is
// given — a JSONL trace writer whose output is byte-identical for any
// `threads` setting.  Ends with the run's metrics snapshot: counters,
// migration histogram, and per-phase wall-clock timers.
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "obs/sink.h"
#include "power/supply.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;

int main(int argc, char** argv) {
  // --- 1. A small datacenter facing a supply dip. --------------------------
  sim::SimConfig cfg;
  cfg.datacenter.layout = {1, 2, 8};  // 16 servers
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model = power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.6;
  cfg.warmup_ticks = 10;
  cfg.measure_ticks = 40;
  cfg.seed = 2026;
  std::vector<util::Watts> levels(50, 4000_W);
  for (int t = 25; t < 35; ++t) levels[t] = 2200_W;  // ten-tick dip
  cfg.supply = std::make_shared<power::SteppedSupply>(levels, 1_s);

  // --- 2. Attach sinks: ring buffer always, JSONL trace if asked. ----------
  auto ring = std::make_shared<obs::RingBufferSink>(1u << 16);
  cfg.sinks.push_back(ring);
  if (argc > 1) {
    cfg.sinks.push_back(std::make_shared<obs::JsonlTraceSink>(argv[1]));
  }

  const auto result = sim::run_simulation(std::move(cfg));

  // --- 3. Narrate the control decisions from the ring buffer. --------------
  std::cout << "== control decisions ==\n";
  for (const auto& e : ring->events()) {
    switch (e.type) {
      case obs::EventType::kMigration:
      case obs::EventType::kThermalThrottle:
      case obs::EventType::kSleep:
      case obs::EventType::kWake:
      case obs::EventType::kDegrade:
      case obs::EventType::kDrop:
        std::cout << "  " << obs::describe(e) << '\n';
        break;
      default:
        break;  // budgets, demand reports, link traffic: too chatty here
    }
  }

  // --- 4. The metrics snapshot the run carries in its SimResult. -----------
  const auto& m = result.metrics;
  std::cout << "\n== counters ==\n";
  util::Table counters({"counter", "value"});
  for (const auto& c : m.counters) {
    counters.row().add(c.name).add(static_cast<long long>(c.value));
  }
  counters.print(std::cout);

  std::cout << "\n== per-phase wall clock ==\n";
  util::Table timers({"timer", "calls", "total_s"});
  timers.set_precision(6);
  for (const auto& t : m.timers) {
    timers.row().add(t.name).add(static_cast<long long>(t.count)).add(
        t.total_seconds);
  }
  timers.print(std::cout);

  if (argc > 1) {
    std::cout << "\n(JSONL trace written to " << argv[1] << ")\n";
  }
  return 0;
}
