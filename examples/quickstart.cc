// Quickstart: build a small datacenter, attach the Willow controller, and
// run it through a supply plunge.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: a Cluster (PMU tree +
// servers), workload placement, the Controller, and reading back budgets,
// migrations, and temperatures.
#include <iostream>

#include "core/controller.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;
using willow::util::Watts;
using willow::util::Seconds;

int main() {
  // --- 1. Describe a server: thermal RC model + power curve. -------------
  core::ServerConfig server;
  server.thermal.c1 = 0.08;           // heating coefficient
  server.thermal.c2 = 0.45;           // cooling rate (stable at full load)
  server.thermal.ambient = 25_degC;
  server.thermal.limit = 70_degC;
  server.thermal.nameplate = 450_W;
  server.power_model = power::ServerPowerModel(30_W, 450_W);

  // --- 2. Build the hierarchy: datacenter -> 2 racks -> 2 servers each. --
  core::Cluster cluster(/*smoothing_alpha=*/0.7);
  const auto root = cluster.add_root("datacenter");
  std::vector<hier::NodeId> servers;
  for (int r = 0; r < 2; ++r) {
    const auto rack = cluster.add_group(root, "rack" + std::to_string(r));
    for (int s = 0; s < 2; ++s) {
      servers.push_back(cluster.add_server(
          rack, "server" + std::to_string(r * 2 + s), server));
    }
  }

  // --- 3. Host some applications (VMs). -----------------------------------
  workload::AppIdAllocator ids;
  auto host = [&](hier::NodeId where, double watts) {
    cluster.place(workload::Application(ids.next(), 0, Watts{watts}, 2048_MB),
                  where);
  };
  host(servers[0], 120.0);
  host(servers[0], 90.0);
  host(servers[1], 60.0);
  host(servers[2], 40.0);

  // --- 4. Attach the controller. ------------------------------------------
  core::ControllerConfig config;
  config.margin = 10_W;          // P_min: post-migration surplus floor
  config.migration_cost = 5_W;   // temporary demand per migration
  config.allocation = core::AllocationPolicy::kProportionalToCapacity;
  core::Controller controller(cluster, config);
  controller.set_migration_sink([](const core::MigrationRecord& rec) {
    std::cout << "  -> migrated app " << rec.app << " from node " << rec.from
              << " to node " << rec.to << " (" << rec.size.value() << " W, "
              << (rec.local ? "local" : "non-local") << ")\n";
  });

  // --- 5. Run 20 demand periods; the supply plunges at t = 10. ------------
  util::Table table({"tick", "supply_W", "budget_s0_W", "budget_s1_W",
                     "budget_s2_W", "budget_s3_W", "migrations"});
  table.set_precision(1);
  for (int t = 0; t < 20; ++t) {
    const Watts supply{t < 10 ? 1200.0 : 700.0};
    cluster.refresh_demands_constant();
    controller.tick(supply);
    cluster.step_thermal(1_s);
    auto& tr = cluster.tree();
    table.row()
        .add(t)
        .add(supply.value())
        .add(tr.node(servers[0]).budget().value())
        .add(tr.node(servers[1]).budget().value())
        .add(tr.node(servers[2]).budget().value())
        .add(tr.node(servers[3]).budget().value())
        .add(static_cast<long long>(controller.migrations_this_tick().size()));
  }
  table.print(std::cout);

  const auto& stats = controller.stats();
  std::cout << "\nTotals: " << stats.total_migrations() << " migrations ("
            << stats.local_migrations << " local, "
            << stats.nonlocal_migrations << " non-local), " << stats.drops
            << " drops, " << stats.sleeps << " sleeps\n";
  for (auto s : servers) {
    std::cout << cluster.tree().node(s).name() << ": "
              << cluster.server(s).apps().size() << " apps, "
              << cluster.server(s).thermal().temperature().value()
              << " degC\n";
  }
  return 0;
}
