// Renewable-powered datacenter: the Fig.-3 fleet riding a solar + grid
// supply over two simulated days.
//
//   $ ./renewable_datacenter
//
// This is the scenario the paper's introduction motivates: "The variability
// associated with the direct use of renewable energy could result in similar
// power deficiencies."  At night the fleet consolidates onto few servers and
// sheds what it must; around noon dropped workload revives and servers wake.
#include <iostream>

#include "power/supply.h"
#include "sim/simulation.h"
#include "util/table.h"

using namespace willow;
using namespace willow::util::literals;
using willow::util::Watts;
using willow::util::Seconds;

int main() {
  sim::SimConfig cfg;
  cfg.datacenter.server.thermal.c1 = 0.08;
  cfg.datacenter.server.thermal.c2 = 0.05;
  cfg.datacenter.server.thermal.ambient = 25_degC;
  cfg.datacenter.server.thermal.limit = 70_degC;
  cfg.datacenter.server.thermal.nameplate = 450_W;
  cfg.datacenter.server.power_model =
      power::ServerPowerModel::paper_simulation();
  cfg.target_utilization = 0.6;

  // 18 servers with a ~506 W sustainable envelope: grid contract covers the
  // idle floors plus a sliver; solar carries the day shift.
  const Seconds day{48.0};  // 48 demand periods per day
  cfg.supply = std::make_shared<power::SolarSupply>(
      /*grid_floor=*/220_W, /*solar_peak=*/350_W, day, /*cloudiness=*/0.4,
      /*seed=*/11);
  // A battery-backed UPS rides through cloud shadows.
  cfg.ups = power::Ups(/*capacity=*/1500_J, /*max_discharge=*/200_W,
                       /*max_charge=*/100_W, /*initial=*/0.8);
  // Users are diurnal too: demand peaks mid-day (conveniently with the sun).
  cfg.intensity = std::make_shared<workload::DiurnalIntensity>(
      1.0, 0.35, day, /*phase=*/day * 0.25);
  // Track the holistic facility draw (Sec. VI future work).
  cfg.cooling = power::CoolingModel{};
  cfg.warmup_ticks = 0;
  cfg.measure_ticks = static_cast<long>(2 * day.value());
  cfg.seed = 3;

  sim::Simulation simulation(std::move(cfg));
  const auto r = simulation.run();

  util::Table table({"hour_of_day", "supply_W", "intensity", "consumed_W",
                     "facility_W", "migrations"});
  table.set_precision(1);
  for (std::size_t i = 0; i < r.supply_series.size(); i += 4) {
    const double t = r.supply_series.times()[i];
    table.row()
        .add(std::fmod(t, day.value()) / day.value() * 24.0)
        .add(r.supply_series.at(i))
        .add(r.intensity_series.at(i))
        .add(r.total_power.at(i))
        .add(r.facility_power.at(i))
        .add(r.migrations_per_tick.at(i));
  }
  table.print(std::cout);

  const auto& st = r.controller_stats;
  std::cout << "\nOver two days: " << st.total_migrations() << " migrations, "
            << st.sleeps << " sleeps, " << st.wakes << " wakes, " << st.drops
            << " drops, " << st.revivals << " revivals\n";
  std::cout << "Max temperature seen: " << r.max_temperature_c
            << " degC (limit 70, violated: "
            << (r.thermal_violation ? "YES" : "no") << ")\n";
  std::cout << "Mean supply " << r.supply_series.stats().mean()
            << " W, mean IT consumption " << r.total_power.stats().mean()
            << " W, mean facility " << r.facility_power.stats().mean()
            << " W (PUE " << r.pue.stats().mean() << ")\n";
  return 0;
}
